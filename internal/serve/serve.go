// Package serve is the fourth execution tier of the batch pipeline: a
// long-running job service that accepts manifest analyses over
// HTTP/JSON, runs them through core.RunBatchStream on one shared
// worker pool and eigendecomposition cache, checkpoints every gene to
// a per-job ledger (internal/checkpoint), and streams results back as
// JSON Lines. Where tiers 1–3 are one-shot processes, the service
// survives its jobs: a killed daemon restarts, revalidates every
// unfinished job's ledger, and resumes each from its last checkpointed
// gene.
//
// # Invariants
//
//   - One pool, one cache: every job's likelihood engines execute on
//     the server's single lik.Pool and share its DecompCache, so
//     concurrent jobs contend for CPU in the pool's queue instead of
//     oversubscribing the machine, and repeated (κ, ω, π)
//     decompositions are shared across jobs. Per-job results remain
//     bit-identical to a standalone run — pool sharing reorders work,
//     never arithmetic (the tier-2/3 guarantee).
//   - Durable progress: a job's results file and checkpoint ledger
//     live in the data directory and are synced gene by gene; the
//     in-memory Job is just a view. Cancellation, graceful shutdown
//     and crashes all leave the pair checkpoint-consistent, so a
//     resumed job's output is byte-identical to an uninterrupted run.
//   - Bounded intake: Submit refuses jobs beyond the queue depth
//     instead of queueing unboundedly, and at most MaxActive jobs run
//     at once.
//   - States: queued → running → done | failed | cancelled |
//     interrupted. "cancelled" is a caller's DELETE; "interrupted"
//     means the daemon shut down first — the job resumes on the next
//     start. Both stop promptly: no new gene starts, in-flight genes
//     drain.
//   - Job index: every lifecycle transition is appended to a jobs.index
//     ledger in the data directory (checkpoint.JobIndex), so restart
//     recovery reads one file instead of revalidating every historical
//     job's ledger. The index is derived state — corruption, deletion
//     or a pre-index data directory all fall back to the directory
//     scan, which also reconciles jobs the index missed (a torn tail).
//   - Multi-tenancy is opt-in (Config.TenantsPath / Config.Tenants):
//     bearer-token auth on the /jobs routes, per-tenant admission
//     quotas, and deterministic round-robin fair-share scheduling
//     (sched.go). Without it the daemon authenticates nothing, queues
//     FIFO, and keeps its exact pre-tenancy wire shapes.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/align"
	"repro/internal/checkpoint"
	"repro/internal/codon"
	"repro/internal/core"
	"repro/internal/lik"
	"repro/internal/manifest"
	"repro/internal/obs"
	"repro/internal/persistcache"
)

// Config sizes the job service.
type Config struct {
	// DataDir holds per-job specs, results and checkpoint ledgers; it
	// is created if absent. A restarted server pointed at the same
	// directory recovers its jobs.
	DataDir string
	// PoolWorkers sizes the shared likelihood worker pool
	// (0 = GOMAXPROCS).
	PoolWorkers int
	// QueueDepth bounds jobs waiting to run (default 16); Submit
	// refuses beyond it.
	QueueDepth int
	// MaxActive bounds jobs running concurrently (default 1 — each job
	// already parallelizes across its genes on the shared pool).
	MaxActive int
	// CacheSize caps the shared eigendecomposition cache (default
	// 1024 entries).
	CacheSize int
	// Format selects the alignment format for every job
	// (default: sniff per file).
	Format align.Format
	// CacheDir, when non-empty, roots the cross-run warm cache
	// (persistcache.Store): eigendecompositions survive daemon restarts
	// and already-analyzed manifest rows replay byte-identically instead
	// of refitting. The directory is separate from per-job files by
	// construction, so purges and retention sweeps never touch it.
	// Multiple daemons may share one cache directory. Empty disables
	// persistence.
	CacheDir string
	// Retain, when positive, bounds the data directory: finished jobs
	// (done, failed or cancelled — never interrupted, which resume on
	// restart) are purged, files and all, once their finish time is
	// older than this window. Zero keeps jobs forever (negative is
	// refused by New); DELETE with ?purge=1 still removes them on
	// demand. Degenerate sub-tick windows are safe: the sweep interval
	// is clamped (sweepInterval), never handed raw to time.NewTicker.
	Retain time.Duration
	// Log receives the daemon's structured events (job lifecycle,
	// restart recovery, retention sweeps). Nil discards them — the
	// server never falls back to the process-global logger, so
	// embedding tests stay silent by default.
	Log *slog.Logger
	// TenantsPath, when non-empty, turns multi-tenancy on: the file
	// (see ParseTenants for the format) defines the tenants, their
	// bearer tokens and their quotas. The /jobs routes then require
	// authentication, tenants see only their own jobs, and the
	// scheduler round-robins across tenants. The file is hot-reloaded
	// when its mtime changes (and via ReloadTenants / SIGHUP in
	// slimcodemld); a reload that fails to parse keeps the previous
	// set. Empty (and Tenants nil) leaves the daemon exactly as
	// before: no auth, one FIFO queue, unchanged wire shapes.
	TenantsPath string
	// Tenants injects a static tenant set directly — the embedding/test
	// path. Mutually exclusive with TenantsPath (no file, no reloads).
	Tenants []Tenant
}

func (c *Config) fill() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxActive <= 0 {
		c.MaxActive = 1
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
}

// Submit overload errors; the HTTP layer maps them to 503.
var (
	ErrQueueFull    = errors.New("serve: job queue is full")
	ErrShuttingDown = errors.New("serve: server is shutting down")
)

// ErrTenantQueueFull is Submit refusing a job because the tenant's own
// max_queued quota is exhausted while the global queue still has room.
// The HTTP layer maps it to 429 — the caller specifically is over
// quota; the daemon is not overloaded.
var ErrTenantQueueFull = errors.New("serve: tenant queue quota exceeded")

// ErrJobActive is Purge refusing a queued or running job; cancel it
// first. The HTTP layer maps it to 409.
var ErrJobActive = errors.New("serve: job is still active; cancel it first")

// ErrUnknownJob marks operations on a job id the server does not hold
// (never submitted, or already purged). The HTTP layer maps it to 404.
var ErrUnknownJob = errors.New("serve: unknown job")

// Health is the /healthz wire representation: liveness plus queue
// occupancy and cache effectiveness.
type Health struct {
	Status      string `json:"status"` // "ok" or "shutting-down"
	Jobs        int    `json:"jobs"`
	QueueLen    int    `json:"queue_len"`
	QueueCap    int    `json:"queue_cap"`
	PoolWorkers int    `json:"pool_workers"`
	// Cache reports the shared eigendecomposition cache and — when a
	// cache directory is configured — the persistent store's counters,
	// so warm-vs-cold behavior is observable without log spelunking.
	Cache *CacheHealth `json:"cache,omitempty"`
	// Tenants reports per-tenant occupancy and admission counters;
	// present only with tenancy configured, so the pre-tenancy wire
	// shape is unchanged. Every number is read from the same metric
	// series /metrics exposes, so the two endpoints agree by
	// construction (the CacheHealth discipline).
	Tenants []TenantHealth `json:"tenants,omitempty"`
}

// TenantHealth is one tenant's row in the /healthz payload.
type TenantHealth struct {
	Name string `json:"name"`
	// Active and Queued are the tenant's current scheduler occupancy.
	Active int `json:"active"`
	Queued int `json:"queued"`
	// Submitted, Dispatched and QuotaRefusals are cumulative over the
	// daemon's lifetime.
	Submitted     int `json:"submitted"`
	Dispatched    int `json:"dispatched"`
	QuotaRefusals int `json:"quota_refusals"`
}

// CacheHealth is the cache section of the /healthz payload. Every
// number here is read from the same source the equivalent /metrics
// series reads at scrape time (lik.DecompCache.Stats, the persistent
// store's counters, the server's count-cache counters), so the two
// endpoints can never disagree about cache effectiveness.
type CacheHealth struct {
	// DecompEntries / DecompHits / DecompMisses report the in-memory
	// eigendecomposition cache (lik.DecompCache.Stats), cumulative over
	// the daemon's lifetime; DecompEvictions counts LRU displacements
	// (capacity pressure).
	DecompEntries   int `json:"decomp_entries"`
	DecompHits      int `json:"decomp_hits"`
	DecompMisses    int `json:"decomp_misses"`
	DecompEvictions int `json:"decomp_evictions"`
	// CountHits / CountMisses aggregate the per-job sidecar codon-count
	// caches (manifest.CountCache) across every job the daemon has run.
	CountHits   int `json:"count_hits"`
	CountMisses int `json:"count_misses"`
	// Persist holds the persistent store's hit/miss/write counters;
	// absent when no cache directory is configured.
	Persist *persistcache.Counters `json:"persist,omitempty"`
}

// JobSpec is a submitted analysis: a manifest plus the
// result-affecting options. Exactly one of ManifestPath and Manifest
// must be set.
type JobSpec struct {
	// ManifestPath names a manifest file on the server's filesystem.
	ManifestPath string `json:"manifest_path,omitempty"`
	// Manifest is inline manifest text ("name align tree" rows);
	// relative paths resolve against BaseDir.
	Manifest string `json:"manifest,omitempty"`
	BaseDir  string `json:"base_dir,omitempty"`

	// Tenant is the owning tenant's name. It is server-assigned: the
	// HTTP layer overwrites whatever the client sent with the
	// authenticated tenant (or clears it with tenancy off), so a
	// client can neither spoof another tenant nor invent one. Persisted
	// with the spec so ownership survives restarts.
	Tenant string `json:"tenant,omitempty"`

	Engine           string `json:"engine,omitempty"` // baseline|slim|slim-sym|slim-bundled (default slim)
	Freq             string `json:"freq,omitempty"`   // f61|f3x4|uniform (default f61)
	MaxIter          int    `json:"max_iter,omitempty"`
	Seed             int64  `json:"seed,omitempty"`
	M0Start          bool   `json:"m0_start,omitempty"`
	ShareFrequencies bool   `json:"share_frequencies,omitempty"`
	// Frequencies, when non-empty, pins the equilibrium codon
	// frequencies (universal-code order, one weight per sense codon)
	// instead of estimating them from this job's own genes — how a
	// fan-out coordinator hands every shard the identical
	// whole-manifest π so -sharefreq holds at tier 5. The values
	// survive the JSON round trip bit-exactly: Go prints the shortest
	// decimal that re-parses to the same float64. With ShareFrequencies
	// also set, the per-job pooling pre-pass is skipped and the preset
	// vector is used directly.
	Frequencies []float64 `json:"frequencies,omitempty"`
	// Concurrency bounds genes fitted at once within this job
	// (0 = GOMAXPROCS); Prefetch bounds resident genes (0 = 2×
	// concurrency).
	Concurrency int `json:"concurrency,omitempty"`
	Prefetch    int `json:"prefetch,omitempty"`
	// WarmStart opts this job into warm-starting the optimizer from the
	// persistent store's last MLE when a gene's row digest and input
	// files match but its options fingerprint does not — the fleet
	// cache hint a coordinator ships to the daemons it fans out to.
	// Documented contract relaxation: a different starting point may
	// change final bits, so warm jobs checkpoint (and cache) under a
	// fingerprint carrying a warm-start marker and never resume or
	// replay a cold run's records. No-op on a daemon without a cache
	// directory.
	WarmStart bool `json:"warm_start,omitempty"`
}

// Job states.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCancelled   = "cancelled"
	StateInterrupted = "interrupted"
)

// Job is one submitted analysis and its progress. All fields behind mu.
type Job struct {
	id      string
	tenant  string // owning tenant ("" = tenancy off); immutable
	spec    JobSpec
	entries []manifest.Entry
	digest  string // manifest.Digest(entries); immutable after creation
	opts    core.StreamOptions

	outPath, ledgerPath, countsPath, specPath string

	mu        sync.Mutex
	state     string
	total     int
	done      int
	failed    int
	errMsg    string
	cancelled bool
	cancel    context.CancelFunc // non-nil while running
	submitted time.Time
	started   time.Time
	finished  time.Time
	summary   *core.StreamSummary
}

// Status is the wire representation of a job's state.
type Status struct {
	ID string `json:"id"`
	// Tenant is the owning tenant; absent with tenancy off, so the
	// pre-tenancy wire shape is unchanged.
	Tenant string `json:"tenant,omitempty"`
	State  string `json:"state"`
	// Total, Done and Failed are gene counts; Done includes genes
	// checkpointed by earlier incarnations of a resumed job.
	Total  int    `json:"total"`
	Done   int    `json:"done"`
	Failed int    `json:"failed"`
	Error  string `json:"error,omitempty"`
	// ManifestDigest fingerprints the job's manifest rows
	// (manifest.Digest) — the identity a fan-out coordinator checks
	// before adopting a recorded job id, since ids can be reissued
	// after a purge + daemon restart.
	ManifestDigest string `json:"manifest_digest,omitempty"`

	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`

	// RuntimeSec and the cache counters cover the job's last run
	// segment (a resumed job restarts them).
	RuntimeSec  float64 `json:"runtime_sec,omitempty"`
	CacheHits   int     `json:"cache_hits,omitempty"`
	CacheMisses int     `json:"cache_misses,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.id, Tenant: j.tenant, State: j.state,
		Total: j.total, Done: j.done, Failed: j.failed,
		Error:          j.errMsg,
		ManifestDigest: j.digest,
		Submitted:      j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.summary != nil {
		st.RuntimeSec = j.summary.Runtime.Seconds()
		st.CacheHits = j.summary.CacheHits
		st.CacheMisses = j.summary.CacheMisses
	}
	return st
}

// Server is the job service: a bounded queue of manifest jobs executed
// on one shared pool and cache. Create with New, serve its Handler,
// stop with Shutdown.
type Server struct {
	cfg   Config
	pool  *lik.Pool
	cache *lik.DecompCache
	store *persistcache.Store // nil without Config.CacheDir
	met   *serverMetrics
	log   *slog.Logger

	// tenancy is fixed at New: per-tenant series and auth exist iff a
	// tenant source was configured. The tenant *set* behind the atomic
	// pointer hot-reloads; nil means no set loaded (refuse everything).
	tenancy bool
	tenants atomic.Pointer[tenantSet]

	idx *checkpoint.JobIndex

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID int
	closed bool

	sched *scheduler
	quit  chan struct{}
	wg    sync.WaitGroup
}

// jobSeq parses the daemon's job-ID convention ("j%06d"), reporting
// the sequence number — the checkpoint.JobIndex hook that keeps IDs
// from being reissued.
func jobSeq(id string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(id, "j%06d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// New builds a server, recovers any unfinished jobs found in the data
// directory (re-queueing them to resume from their checkpoints), and
// starts the job runners.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("serve: Config.DataDir is required")
	}
	if cfg.Retain < 0 {
		return nil, fmt.Errorf("serve: negative retention window %s (use 0 to keep jobs forever)", cfg.Retain)
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.TenantsPath != "" && len(cfg.Tenants) > 0 {
		return nil, fmt.Errorf("serve: Config.TenantsPath and Config.Tenants are mutually exclusive")
	}
	s := &Server{
		cfg:   cfg,
		pool:  lik.NewPool(cfg.PoolWorkers),
		cache: lik.NewDecompCache(cfg.CacheSize),
		jobs:  make(map[string]*Job),
		quit:  make(chan struct{}),
	}
	switch {
	case cfg.TenantsPath != "":
		ts, err := LoadTenants(cfg.TenantsPath)
		if err != nil {
			s.pool.Close()
			return nil, err
		}
		s.tenancy = true
		s.tenants.Store(newTenantSet(ts))
	case len(cfg.Tenants) > 0:
		if err := checkTenants(cfg.Tenants); err != nil {
			s.pool.Close()
			return nil, err
		}
		s.tenancy = true
		s.tenants.Store(newTenantSet(cfg.Tenants))
	}
	if cfg.CacheDir != "" {
		store, err := persistcache.Open(cfg.CacheDir)
		if err != nil {
			s.pool.Close()
			return nil, err
		}
		s.store = store
		// In-memory cache misses fall through to the persistent tier, so
		// a restarted daemon reloads its decompositions instead of
		// recomputing them.
		s.cache.WithStore(store)
	}
	s.log = cfg.Log
	if s.log == nil {
		s.log = obs.NopLogger()
	}
	// Metrics exist before recovery: recovered jobs re-resolve their
	// specs (which binds the stream to the registry) and recovery itself
	// counts lifecycle events.
	s.met = newServerMetrics(s)
	recovered, err := s.recover()
	if err != nil {
		s.pool.Close()
		return nil, err
	}
	// The queue must hold every recovered unfinished job plus the
	// configured intake depth.
	s.sched = newScheduler(cfg.QueueDepth+len(recovered), s.tenantLimits)
	s.sched.onChange = s.met.tenantOccupancy
	s.sched.onDispatch = s.met.tenantDispatch
	s.met.touchTenants(s.currentTenantNames())
	for _, job := range recovered {
		// force: the capacity was sized to hold them, and a shrunk quota
		// must never orphan a recovered job.
		s.sched.enqueue(job, true)
	}
	for i := 0; i < cfg.MaxActive; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	if cfg.Retain > 0 {
		s.wg.Add(1)
		go s.sweeper()
	}
	if cfg.TenantsPath != "" {
		s.wg.Add(1)
		go s.tenantsWatcher()
	}
	return s, nil
}

// tenantLimits resolves a tenant's quotas against the current
// (hot-reloadable) tenant set — the scheduler's admission hook.
func (s *Server) tenantLimits(name string) (maxActive, maxQueued int) {
	ts := s.tenants.Load()
	if ts == nil {
		return 0, 0
	}
	return ts.limits(name)
}

// currentTenantNames returns the configured tenant names (nil with
// tenancy off).
func (s *Server) currentTenantNames() []string {
	ts := s.tenants.Load()
	if ts == nil {
		return nil
	}
	return ts.names()
}

// ReloadTenants re-reads the tenants file. A file that fails to load
// or parse is an error and keeps the previous tenant set — a bad edit
// must not lock every client out. New quotas apply to subsequent
// admission and dispatch decisions immediately.
func (s *Server) ReloadTenants() error {
	if s.cfg.TenantsPath == "" {
		return fmt.Errorf("serve: no tenants file configured")
	}
	ts, err := LoadTenants(s.cfg.TenantsPath)
	if err != nil {
		s.met.tenantReload(false)
		return err
	}
	s.tenants.Store(newTenantSet(ts))
	s.met.tenantReload(true)
	s.met.touchTenants(s.currentTenantNames())
	s.log.Info("tenants reloaded", "tenants", len(ts))
	return nil
}

// tenantsWatcher hot-reloads the tenants file when its mtime changes,
// so token rotation and quota edits need no restart (SIGHUP in
// slimcodemld forces the same reload).
func (s *Server) tenantsWatcher() {
	defer s.wg.Done()
	var last time.Time
	if info, err := os.Stat(s.cfg.TenantsPath); err == nil {
		last = info.ModTime()
	}
	t := time.NewTicker(tenantsPollInterval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			info, err := os.Stat(s.cfg.TenantsPath)
			if err != nil || info.ModTime().Equal(last) {
				continue
			}
			last = info.ModTime()
			if err := s.ReloadTenants(); err != nil {
				s.log.Warn("tenants reload failed; keeping previous tenant set",
					"path", s.cfg.TenantsPath, "error", err)
			}
		}
	}
}

// tenantsPollInterval is how often the watcher stats the tenants file
// (a var so tests can tighten it).
var tenantsPollInterval = time.Second

// Purge removes a finished job entirely: its results, ledger, counts
// and spec files are deleted from the data directory and the job
// disappears from the listing — how callers (a fan-out coordinator
// collecting shards, or the -retain sweep) bound the data directory,
// which otherwise grows one results+ledger(+counts) triple per job
// forever. Queued and running jobs are refused with ErrJobActive;
// cancel them first. The cross-run cache (Config.CacheDir) is never
// touched: purging removes exactly the four per-job paths, and cache
// files live in their own directory tree.
func (s *Server) Purge(id string) error { return s.purge(id, eventPurged) }

// purge implements Purge; event distinguishes caller-driven purges
// from the retention sweeper's in the lifecycle counter and the log.
func (s *Server) purge(id, event string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	switch job.state {
	case StateQueued, StateRunning:
		return ErrJobActive
	}
	// Files first: a removal failure leaves the job listed so the purge
	// can be retried.
	for _, p := range []string{job.outPath, job.ledgerPath, job.countsPath, job.specPath} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("serve: purge %s: %w", id, err)
		}
	}
	delete(s.jobs, id)
	for i, jid := range s.order {
		if jid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if err := s.idx.Purge(id); err != nil {
		// The index is derived state; a failed tombstone only means the
		// next restart re-reconciles this id against the (gone) spec file.
		s.log.Warn("job index purge append failed", "job", id, "error", err)
	}
	s.met.jobEvents.With(event).Inc()
	if event == eventSwept {
		s.log.Info("retention sweep purged expired job",
			"job", id, "state", job.state, "finished", job.finished)
	} else {
		s.log.Info("job purged", "job", id, "state", job.state)
	}
	return nil
}

// sweepInterval derives the sweeper's tick from the retention window:
// a quarter of it, clamped to [50 ms, 1 min]. The floor keeps
// degenerate windows safe — retain/4 rounds to 0 for anything under
// 4 ns, and time.NewTicker panics on a non-positive interval — while
// still sweeping such windows promptly; the ceiling keeps huge windows
// from deferring cleanup for hours past expiry.
func sweepInterval(retain time.Duration) time.Duration {
	interval := retain / 4
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	return interval
}

// sweeper purges expired finished jobs every sweepInterval until
// shutdown.
func (s *Server) sweeper() {
	defer s.wg.Done()
	t := time.NewTicker(sweepInterval(s.cfg.Retain))
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.sweepExpired()
		}
	}
}

// sweepExpired purges every done, failed or cancelled job whose finish
// time has aged past the retention window. Interrupted jobs are left
// alone: they resume on the next start and purging them would discard
// resumable work.
func (s *Server) sweepExpired() {
	cutoff := time.Now().Add(-s.cfg.Retain)
	s.mu.Lock()
	var expired []string
	for id, j := range s.jobs {
		j.mu.Lock()
		switch j.state {
		case StateDone, StateFailed, StateCancelled:
			if !j.finished.IsZero() && j.finished.Before(cutoff) {
				expired = append(expired, id)
			}
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	for _, id := range expired {
		// Best effort; a failed removal is retried next sweep.
		if err := s.purge(id, eventSwept); err != nil && !errors.Is(err, ErrUnknownJob) {
			s.log.Warn("retention sweep could not purge job; will retry",
				"job", id, "error", err)
		}
	}
}

// cacheHealth snapshots the cache counters for /healthz from exactly
// the sources the /metrics function-backed series read, keeping the
// two endpoints in agreement by construction.
func (s *Server) cacheHealth() *CacheHealth {
	hits, misses := s.cache.Stats()
	ch := &CacheHealth{
		DecompEntries:   s.cache.Len(),
		DecompHits:      hits,
		DecompMisses:    misses,
		DecompEvictions: s.cache.Evictions(),
		CountHits:       int(s.met.countHits.Value()),
		CountMisses:     int(s.met.countMisses.Value()),
	}
	if s.store != nil {
		c := s.store.Counters()
		ch.Persist = &c
	}
	return ch
}

// tenantHealth snapshots the per-tenant rows for /healthz, reading
// exactly the metric series /metrics exposes (the CacheHealth
// agreement discipline). Nil with tenancy off, keeping the
// pre-tenancy wire shape.
func (s *Server) tenantHealth() []TenantHealth {
	if !s.tenancy {
		return nil
	}
	names := s.currentTenantNames()
	out := make([]TenantHealth, 0, len(names))
	for _, name := range names {
		out = append(out, TenantHealth{
			Name:          name,
			Active:        int(s.met.tenantActive.With(name).Value()),
			Queued:        int(s.met.tenantQueued.With(name).Value()),
			Submitted:     int(s.met.tenantSubmitted.With(name).Value()),
			Dispatched:    int(s.met.tenantDispatched.With(name).Value()),
			QuotaRefusals: int(s.met.tenantRefusals.With(name).Value()),
		})
	}
	return out
}

// jobsSnapshot collects the jobs in submission order; with scoped set
// only the tenant's own.
func (s *Server) jobsSnapshot(tenant string, scoped bool) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		if scoped && j.tenant != tenant {
			continue
		}
		jobs = append(jobs, j)
	}
	return jobs
}

func statuses(jobs []*Job) []Status {
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Jobs returns every job's status in submission order.
func (s *Server) Jobs() []Status { return statuses(s.jobsSnapshot("", false)) }

// JobsPage is one window of a paginated listing.
type JobsPage struct {
	Jobs []Status `json:"jobs"`
	// Total is the full (tenant-visible) job count; NextOffset is the
	// offset of the next window, present only when one exists.
	Total      int `json:"total"`
	NextOffset int `json:"next_offset,omitempty"`
}

// JobsPage lists the window [offset, offset+limit) of the jobs visible
// under (tenant, scoped) — how GET /jobs?offset=&limit= serves a data
// directory holding millions of historical jobs without marshalling
// them all per request. limit <= 0 means no bound.
func (s *Server) JobsPage(tenant string, scoped bool, offset, limit int) JobsPage {
	jobs := s.jobsSnapshot(tenant, scoped)
	total := len(jobs)
	if offset < 0 {
		offset = 0
	}
	if offset > total {
		offset = total
	}
	end := total
	if limit > 0 && offset+limit < end {
		end = offset + limit
	}
	page := JobsPage{Jobs: statuses(jobs[offset:end]), Total: total}
	if end < total {
		page.NextOffset = end
	}
	return page
}

// Job returns the job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// ResultsPath returns the job's JSONL results file.
func (j *Job) ResultsPath() string { return j.outPath }

// Submit validates the spec, persists it, and enqueues the job. The
// spec's Tenant field is trusted here — the HTTP layer has already
// overwritten it with the authenticated tenant (or cleared it).
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	entries, opts, err := s.resolveSpec(spec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	job := s.newJob(id, spec, entries, opts)
	job.submitted = time.Now()
	// Reserve a queue slot before persisting so a full queue refuses
	// cleanly.
	if err := s.sched.enqueue(job, false); err != nil {
		s.mu.Unlock()
		switch {
		case errors.Is(err, ErrTenantQueueFull):
			s.met.tenantQuotaRefusal(job.tenant)
			_, maxQueued := s.tenantLimits(job.tenant)
			return nil, fmt.Errorf("%w: tenant %s has %d jobs queued (max_queued)",
				ErrTenantQueueFull, job.tenant, maxQueued)
		case errors.Is(err, ErrQueueFull):
			return nil, fmt.Errorf("%w (%d queued)", ErrQueueFull, s.sched.capacityCap())
		}
		return nil, err
	}
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.met.jobEvents.With(eventSubmitted).Inc()
	s.met.tenantSubmit(job.tenant, s.tenancy)
	if job.tenant != "" {
		s.log.Info("job submitted", "job", id, "tenant", job.tenant, "genes", job.total)
	} else {
		s.log.Info("job submitted", "job", id, "genes", job.total)
	}
	if err := job.persistSpec(); err != nil {
		// The runner will still execute the job; it just will not be
		// recovered after a restart.
		job.mu.Lock()
		job.errMsg = fmt.Sprintf("spec not persisted: %v", err)
		job.mu.Unlock()
		s.log.Warn("job spec not persisted; job will not survive a restart",
			"job", id, "error", err)
	}
	job.mu.Lock()
	s.indexPutLocked(job)
	job.mu.Unlock()
	return job, nil
}

// indexPutLocked appends the job's current state to the job index.
// Callers hold job.mu (or exclusive access during recovery). Append
// failures are logged, never fatal: the index is derived state and the
// next restart's directory reconciliation rebuilds what it missed.
func (s *Server) indexPutLocked(job *Job) {
	if s.idx == nil {
		return
	}
	rec := checkpoint.JobIndexRecord{
		ID: job.id, Tenant: job.tenant, State: job.state,
		Total: job.total, Done: job.done, Failed: job.failed,
		Error: job.errMsg, Digest: job.digest,
	}
	if !job.submitted.IsZero() {
		rec.SubmittedUnixNano = job.submitted.UnixNano()
	}
	if !job.finished.IsZero() {
		rec.FinishedUnixNano = job.finished.UnixNano()
	}
	if err := s.idx.Put(rec); err != nil {
		s.log.Warn("job index append failed; rebuilt on next start",
			"job", job.id, "error", err)
	}
}

// Cancel stops the job: a queued job is marked cancelled immediately, a
// running job has its context cancelled (no new gene starts; in-flight
// genes drain and the checkpoint stays consistent). Finished jobs
// return an error.
func (s *Server) Cancel(id string) error {
	job, ok := s.Job(id)
	if !ok {
		return fmt.Errorf("serve: no job %s", id)
	}
	job.mu.Lock()
	switch job.state {
	case StateQueued:
		job.cancelled = true
		job.state = StateCancelled
		job.finished = time.Now()
		s.indexPutLocked(job)
		job.mu.Unlock()
		// Outside job.mu: the scheduler takes its own lock, and unlike
		// the old channel queue the slot frees immediately instead of
		// being skipped at dispatch time.
		s.sched.remove(job)
		s.met.jobEvents.With(eventCancelled).Inc()
		s.log.Info("queued job cancelled", "job", id)
		return nil
	case StateRunning:
		job.cancelled = true
		job.cancel()
		job.mu.Unlock()
		return nil
	}
	state := job.state
	job.mu.Unlock()
	return fmt.Errorf("serve: job %s already %s", id, state)
}

// Shutdown stops the service gracefully: intake closes, running jobs
// are cancelled at their next gene boundary (their ledgers already
// hold every delivered result), still-queued jobs are marked
// interrupted, and the shared pool is released. Interrupted and
// still-running work resumes when a new server is pointed at the same
// data directory. The context bounds how long to wait for in-flight
// genes to drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	s.log.Info("shutting down; cancelling running jobs at the next gene boundary",
		"jobs", len(jobs))

	close(s.quit)
	s.sched.close()
	for _, j := range jobs {
		j.mu.Lock()
		if j.cancel != nil {
			j.cancel()
		}
		j.mu.Unlock()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
	// Runners are gone; mark whatever never ran as interrupted.
	for _, job := range s.sched.drain() {
		job.mu.Lock()
		if job.state == StateQueued {
			job.state = StateInterrupted
			job.finished = time.Now()
			s.indexPutLocked(job)
			s.met.jobEvents.With(eventInterrupted).Inc()
			s.log.Info("queued job interrupted by shutdown; resumes on restart",
				"job", job.id)
		}
		job.mu.Unlock()
	}
	if err := s.idx.Close(); err != nil {
		s.log.Warn("job index close failed", "error", err)
	}
	s.pool.Close()
	return nil
}

// runner executes dispatched jobs until shutdown. The scheduler
// applies the fair-share policy; dispatch returns nil once closed.
func (s *Server) runner() {
	defer s.wg.Done()
	for {
		job := s.sched.dispatch()
		if job == nil {
			return
		}
		s.runJob(job)
		s.sched.release(job.tenant)
	}
}

// runJob drives one job through the checkpointed stream.
func (s *Server) runJob(job *Job) {
	// The shutdown check and the cancel registration happen under one
	// s.mu critical section: Shutdown sets closed and then cancels
	// every registered job under the same lock order (s.mu → job.mu),
	// so a job either sees closed here or has its cancel visible to
	// Shutdown — it can never start uncancellable mid-shutdown.
	s.mu.Lock()
	job.mu.Lock()
	if job.state != StateQueued { // cancelled while queued
		job.mu.Unlock()
		s.mu.Unlock()
		return
	}
	if s.closed {
		job.state = StateInterrupted
		job.finished = time.Now()
		s.indexPutLocked(job)
		job.mu.Unlock()
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	job.cancel = cancel
	job.state = StateRunning
	job.started = time.Now()
	job.mu.Unlock()
	s.mu.Unlock()
	defer cancel()
	s.met.activeJobs.Inc()
	defer s.met.activeJobs.Dec()
	s.log.Info("job started", "job", job.id, "genes", job.total)

	counts := manifest.OpenCountCache(job.countsPath)
	sum, err := checkpoint.Run(ctx, checkpoint.RunConfig{
		Entries: job.entries,
		Format:  s.cfg.Format,
		OutPath: job.outPath,
		Opts:    job.opts,
		Counts:  counts,
		OnStart: func(completed, failed int) {
			job.mu.Lock()
			job.done, job.failed = completed, failed
			job.mu.Unlock()
		},
		OnResult: func(r core.GeneResult) {
			job.mu.Lock()
			job.done++
			if r.Err != nil {
				job.failed++
			}
			job.mu.Unlock()
		},
	})

	// The job's count-cache Lookup outcomes roll up into the daemon-wide
	// counters /metrics and /healthz both read. checkpoint.Run has
	// returned, so the cache's owning goroutine is done with it.
	ch, cm := counts.Stats()
	s.met.countHits.Add(float64(ch))
	s.met.countMisses.Add(float64(cm))

	job.mu.Lock()
	defer job.mu.Unlock()
	job.summary = sum
	job.cancel = nil
	job.finished = time.Now()
	switch {
	case err == nil:
		job.state = StateDone
	case errors.Is(err, context.Canceled):
		if job.cancelled {
			job.state = StateCancelled
		} else {
			job.state = StateInterrupted
		}
	default:
		job.state = StateFailed
		job.errMsg = err.Error()
	}
	// fsync-before-describe: checkpoint.Run has made the results and
	// ledger durable before this record claims the job finished.
	s.indexPutLocked(job)
	s.met.jobEvents.With(job.state).Inc() // states double as event names
	attrs := []any{"job", job.id, "state", job.state, "done", job.done, "failed", job.failed}
	if sum != nil {
		attrs = append(attrs, "runtime_sec", sum.Runtime.Seconds())
	}
	if job.state == StateFailed {
		s.log.Warn("job failed", append(attrs, "error", job.errMsg)...)
	} else {
		s.log.Info("job finished", attrs...)
	}
}

// newJob wires a job's paths and in-memory state (caller holds s.mu or
// is in recovery before runners start).
func (s *Server) newJob(id string, spec JobSpec, entries []manifest.Entry, opts core.StreamOptions) *Job {
	base := filepath.Join(s.cfg.DataDir, id)
	digest := ""
	if len(entries) > 0 {
		digest = manifest.Digest(entries)
	}
	return &Job{
		id: id, tenant: spec.Tenant, spec: spec, entries: entries, digest: digest, opts: opts,
		outPath:    base + ".jsonl",
		ledgerPath: checkpoint.LedgerPath(base + ".jsonl"),
		countsPath: base + ".counts",
		specPath:   base + ".job.json",
		state:      StateQueued,
		total:      len(entries),
	}
}

// persistSpec writes the job spec beside its results so a restarted
// server can recover the job.
func (j *Job) persistSpec() error {
	data, err := json.MarshalIndent(j.spec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(j.specPath, append(data, '\n'), 0o644)
}

// resolveSpec turns a spec into verified manifest entries and stream
// options bound to the server's shared pool and cache.
func (s *Server) resolveSpec(spec JobSpec) ([]manifest.Entry, core.StreamOptions, error) {
	var opts core.StreamOptions
	if (spec.ManifestPath == "") == (spec.Manifest == "") {
		return nil, opts, fmt.Errorf("serve: exactly one of manifest_path and manifest is required")
	}
	var entries []manifest.Entry
	var err error
	if spec.ManifestPath != "" {
		entries, err = manifest.Load(spec.ManifestPath)
	} else {
		entries, err = manifest.Parse(strings.NewReader(spec.Manifest), spec.BaseDir)
		if err == nil {
			err = manifest.Verify(entries)
		}
	}
	if err != nil {
		return nil, opts, err
	}
	engine, err := core.ParseEngineKind(spec.Engine)
	if err != nil {
		return nil, opts, err
	}
	freq, err := core.ParseFreqEstimator(spec.Freq)
	if err != nil {
		return nil, opts, err
	}
	opts = core.StreamOptions{
		BatchOptions: core.BatchOptions{
			Options: core.Options{
				Engine:        engine,
				Freq:          freq,
				MaxIterations: spec.MaxIter,
				Seed:          spec.Seed,
				M0Start:       spec.M0Start,
			},
			Concurrency:      spec.Concurrency,
			ShareFrequencies: spec.ShareFrequencies,
			// PoolWorkers is ignored: the stream runs on the shared
			// pool below.
		},
		Prefetch:  spec.Prefetch,
		Pool:      s.pool,
		Decomps:   s.cache,
		Persist:   s.store, // nil without a cache dir
		WarmStart: spec.WarmStart,
		// Every job's stream records its fit latencies and prefetch
		// occupancy into the daemon's registry (the per-gene series on
		// GET /metrics). Registration is idempotent, so concurrent jobs
		// share the same series.
		Metrics: s.met.reg,
	}
	if n := len(spec.Frequencies); n > 0 {
		if want := codon.Universal.NumStates(); n != want {
			return nil, opts, fmt.Errorf("serve: frequencies must carry %d weights (one per universal-code sense codon), got %d", want, n)
		}
		for i, v := range spec.Frequencies {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return nil, opts, fmt.Errorf("serve: frequencies[%d] = %v is not a valid probability weight", i, v)
			}
		}
		opts.Options.Frequencies = spec.Frequencies
	}
	return entries, opts, nil
}

// recover rebuilds the job table on startup. The job index is the fast
// path: finished jobs (done, failed, cancelled) reload straight from
// their index records — no spec parse, no ledger revalidation — so a
// restart over millions of historical jobs is one file read. Only
// unfinished jobs (queued, running, interrupted) revalidate their
// checkpoint ledgers and requeue. A directory scan then reconciles the
// two views: spec files the index missed (a pre-index data directory,
// or a submission whose index record was the torn tail) take the old
// per-job revalidation path and are written into the index; index
// records whose files vanished are tombstoned.
func (s *Server) recover() ([]*Job, error) {
	idxPath := checkpoint.JobIndexPath(s.cfg.DataDir)
	idx, err := checkpoint.OpenJobIndex(idxPath, jobSeq)
	if err != nil {
		// Derived state: anything beyond the torn tail the index itself
		// drops means rebuild, not refuse.
		s.log.Warn("job index unreadable; rebuilding from a directory scan",
			"path", idxPath, "error", err)
		if rmErr := os.Remove(idxPath); rmErr != nil && !os.IsNotExist(rmErr) {
			return nil, fmt.Errorf("serve: %w", rmErr)
		}
		if idx, err = checkpoint.OpenJobIndex(idxPath, jobSeq); err != nil {
			return nil, err
		}
	}
	s.idx = idx

	des, err := os.ReadDir(s.cfg.DataDir)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	specs := make(map[string]bool)
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".job.json") {
			continue
		}
		id := strings.TrimSuffix(de.Name(), ".job.json")
		n, ok := jobSeq(id)
		if !ok {
			continue // not one of ours
		}
		if n > s.nextID {
			s.nextID = n
		}
		specs[id] = true
	}

	var requeue []*Job
	indexed := make(map[string]bool)
	fromIndex := 0
	for _, rec := range idx.Records() {
		indexed[rec.ID] = true
		if !specs[rec.ID] {
			// The job's files were removed behind the index's back (an
			// operator rm, a recreated data dir): gone is gone.
			if err := idx.Purge(rec.ID); err != nil {
				s.log.Warn("job index purge append failed", "job", rec.ID, "error", err)
			}
			continue
		}
		switch rec.State {
		case StateDone, StateFailed, StateCancelled:
			job := s.shellJob(rec)
			s.jobs[rec.ID] = job
			s.order = append(s.order, rec.ID)
			fromIndex++
			s.met.jobEvents.With(eventRecovered).Inc()
		default:
			// queued / running / interrupted: the checkpoint ledger is
			// the authority on progress; revalidate and requeue.
			if job, resume := s.revalidate(rec.ID); resume {
				requeue = append(requeue, job)
			}
		}
	}
	if fromIndex > 0 {
		s.log.Info("recovered finished jobs from the index", "jobs", fromIndex)
	}

	// Reconciliation: specs the index does not know.
	var orphans []string
	for id := range specs {
		if !indexed[id] {
			orphans = append(orphans, id)
		}
	}
	sort.Strings(orphans) // ids are zero-padded: lexical = submission order
	for _, id := range orphans {
		if job, resume := s.revalidate(id); resume {
			requeue = append(requeue, job)
		}
	}
	sort.Strings(s.order)
	if n := idx.MaxSeq(); n > s.nextID {
		s.nextID = n
	}
	return requeue, nil
}

// shellJob rebuilds a finished job from its index record alone — the
// in-memory view a status or results request needs, without touching
// the job's spec or ledger.
func (s *Server) shellJob(rec checkpoint.JobIndexRecord) *Job {
	job := s.newJob(rec.ID, JobSpec{Tenant: rec.Tenant}, nil, core.StreamOptions{})
	job.state = rec.State
	job.total, job.done, job.failed = rec.Total, rec.Done, rec.Failed
	job.errMsg = rec.Error
	job.digest = rec.Digest
	if rec.SubmittedUnixNano != 0 {
		job.submitted = time.Unix(0, rec.SubmittedUnixNano)
	}
	if rec.FinishedUnixNano != 0 {
		job.finished = time.Unix(0, rec.FinishedUnixNano)
	}
	return job
}

// revalidate runs the directory-scan recovery path for one job id and
// lists the result, refreshing its index record. Reports whether the
// job needs requeueing.
func (s *Server) revalidate(id string) (*Job, bool) {
	job, resume, err := s.recoverJob(id)
	switch {
	case err != nil:
		job.state = StateFailed
		job.errMsg = fmt.Sprintf("recovery: %v", err)
		job.finished = time.Now()
		resume = false
		s.met.jobEvents.With(eventRecoveryFailed).Inc()
		s.log.Warn("job revalidation refused; marked failed",
			"job", id, "reason", err)
	case resume:
		s.met.jobEvents.With(eventRequeued).Inc()
		s.log.Info("recovered unfinished job; requeued to resume",
			"job", id, "genes", job.total, "done", job.done, "failed", job.failed)
	default:
		s.met.jobEvents.With(eventRecovered).Inc()
		s.log.Info("recovered finished job", "job", id, "state", job.state)
	}
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.indexPutLocked(job) // migrate / refresh the index record
	return job, resume
}

// recoverJob rebuilds one persisted job, reporting whether it still
// needs to run. Always returns a job (possibly a shell holding only
// the id) so failures stay visible.
func (s *Server) recoverJob(id string) (*Job, bool, error) {
	shell := s.newJob(id, JobSpec{}, nil, core.StreamOptions{})
	data, err := os.ReadFile(shell.specPath)
	if err != nil {
		return shell, false, err
	}
	var spec JobSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return shell, false, err
	}
	entries, opts, err := s.resolveSpec(spec)
	if err != nil {
		return shell, false, err
	}
	job := s.newJob(id, spec, entries, opts)
	job.submitted = time.Now()
	if info, err := os.Stat(job.specPath); err == nil {
		// The spec file's mtime is when the job was really submitted —
		// stamping time.Now() would reset history on every restart.
		job.submitted = info.ModTime()
	}
	if _, err := os.Stat(job.ledgerPath); err != nil {
		return job, true, nil // never started: run fresh
	}
	ledger, err := checkpoint.Open(job.ledgerPath)
	if err != nil {
		return job, false, err
	}
	plan, err := ledger.Plan(entries, checkpoint.RunFingerprint(opts, s.cfg.Format))
	ledger.Close()
	if err != nil {
		return job, false, err
	}
	job.done, job.failed = plan.Skip, plan.Failed
	if plan.Skip == len(entries) {
		job.state = StateDone
		job.finished = time.Now()
		if info, err := os.Stat(job.ledgerPath); err == nil {
			// Likewise, the ledger's last write is when the job actually
			// finished: keeps -retain aging across daemon restarts
			// instead of resetting the clock every start.
			job.finished = info.ModTime()
		}
		return job, false, nil
	}
	return job, true, nil
}
