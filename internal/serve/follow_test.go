package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
)

// Follow mode's core contract: the bytes a follower receives over the
// life of a job are identical to a plain GET /results after the job
// finishes — streaming changes delivery, never content.
func TestFollowMatchesPolledResults(t *testing.T) {
	srv, err := serve.New(serve.Config{
		DataDir:     t.TempDir(),
		PoolWorkers: 1,
		MaxActive:   1,
		QueueDepth:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	maniPath, _ := simManifest(t, 6, 8000)
	st := postJob(t, ts.URL, serve.JobSpec{ManifestPath: maniPath, MaxIter: 1, Seed: 1, Concurrency: 1})

	c := serve.NewClient(ts.URL)
	ctx := context.Background()
	rc, followed, err := c.FollowResults(ctx, st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !followed {
		t.Fatal("daemon did not advertise follow capability")
	}
	streamed, err := io.ReadAll(rc) // ends when the job is terminal and drained
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}

	end := getStatus(t, ts.URL, st.ID)
	if end.State != serve.StateDone {
		t.Fatalf("job ended %s, want done", end.State)
	}
	polled := fetchResults(t, ts.URL, st.ID)
	if !bytes.Equal(streamed, polled) {
		t.Fatalf("followed bytes diverge from polled results\nfollow: %q\npolled: %q", streamed, polled)
	}
	if len(streamed) == 0 || streamed[len(streamed)-1] != '\n' {
		t.Fatalf("followed stream does not end at a line boundary: %q", streamed)
	}
}

// Follow mode across a daemon restart: a stream cut by shutdown ends at
// a line boundary with every line a valid record (a clean prefix of the
// final results), and re-following with offset=<bytes received> after
// the restart delivers exactly the remainder.
func TestFollowCleanPrefixAcrossRestart(t *testing.T) {
	dataDir := t.TempDir()
	maniPath, _ := simManifest(t, 12, 8100)
	spec := serve.JobSpec{ManifestPath: maniPath, MaxIter: 1, Seed: 1, Concurrency: 1}

	srv1, err := serve.New(serve.Config{DataDir: dataDir, PoolWorkers: 1, MaxActive: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	st := postJob(t, ts1.URL, spec)

	c1 := serve.NewClient(ts1.URL)
	ctx := context.Background()
	rc, followed, err := c1.FollowResults(ctx, st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !followed {
		t.Fatal("daemon did not advertise follow capability")
	}
	// Drain the stream from a goroutine; it ends when shutdown cuts it.
	prefixCh := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(rc)
		rc.Close()
		prefixCh <- data
	}()

	// Let the job make real progress, then kill the daemon mid-stream.
	pollUntil(t, ts1.URL, st.ID, func(s serve.Status) bool { return s.Done >= 2 }, "progress")
	if err := srv1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	var prefix []byte
	select {
	case prefix = <-prefixCh:
	case <-time.After(30 * time.Second):
		t.Fatal("follow stream did not end on daemon shutdown")
	}
	ts1.Close()

	// Clean prefix: ends on '\n', and every line is a complete JSON
	// record — shutdown never leaks a torn line.
	if len(prefix) == 0 || prefix[len(prefix)-1] != '\n' {
		t.Fatalf("interrupted stream did not end at a line boundary: %q", prefix)
	}
	for i, line := range bytes.Split(bytes.TrimSuffix(prefix, []byte("\n")), []byte("\n")) {
		var v map[string]any
		if err := json.Unmarshal(line, &v); err != nil {
			t.Fatalf("interrupted stream line %d is not a complete record: %q", i, line)
		}
	}

	// Restart on the same data directory; the job resumes and finishes.
	srv2, err := serve.New(serve.Config{DataDir: dataDir, PoolWorkers: 1, MaxActive: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown(context.Background())
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	c2 := serve.NewClient(ts2.URL)
	rc2, followed, err := c2.FollowResults(ctx, st.ID, int64(len(prefix)))
	if err != nil {
		t.Fatal(err)
	}
	if !followed {
		t.Fatal("restarted daemon did not advertise follow capability")
	}
	rest, err := io.ReadAll(rc2)
	rc2.Close()
	if err != nil {
		t.Fatal(err)
	}

	polled := fetchResults(t, ts2.URL, st.ID)
	if got := append(append([]byte(nil), prefix...), rest...); !bytes.Equal(got, polled) {
		t.Fatalf("prefix(%d bytes) + resumed follow(%d bytes) != final results (%d bytes)",
			len(prefix), len(rest), len(polled))
	}
	if end := getStatus(t, ts2.URL, st.ID); end.State != serve.StateDone {
		t.Fatalf("job ended %s, want done", end.State)
	}
}
