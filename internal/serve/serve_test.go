package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/align"
	"repro/internal/bsm"
	"repro/internal/codon"
	"repro/internal/core"
	"repro/internal/manifest"
	"repro/internal/serve"
	"repro/internal/sim"
)

// simManifest simulates n small genes under the seed offset and writes
// them as manifest files, returning the manifest path and entries.
func simManifest(t *testing.T, n int, seedOff int64) (string, []manifest.Entry) {
	t.Helper()
	dir := t.TempDir()
	entries := make([]manifest.Entry, n)
	for i := range entries {
		tree, err := sim.RandomTree(sim.TreeConfig{Species: 4, MeanBranchLength: 0.2, Seed: seedOff + int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		aln, err := sim.Simulate(tree, codon.Universal, sim.SeqConfig{
			Sites:  24,
			Params: bsm.Params{Kappa: 2, Omega0: 0.2, Omega2: 3, P0: 0.5, P1: 0.3},
			Seed:   seedOff + 100 + int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("g%02d", i)
		alnPath := filepath.Join(dir, name+".fasta")
		f, err := os.Create(alnPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := align.WriteFasta(f, aln); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		treePath := filepath.Join(dir, name+".nwk")
		if err := os.WriteFile(treePath, []byte(tree.String()+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		entries[i] = manifest.Entry{Name: name, AlignPath: alnPath, TreePath: treePath}
	}
	maniPath := filepath.Join(dir, "genes.manifest")
	if err := manifest.WriteFile(maniPath, entries); err != nil {
		t.Fatal(err)
	}
	return maniPath, entries
}

// expectedJSONL runs the stream directly and renders the deterministic
// JSONL projection the job service checkpoints.
func expectedJSONL(t *testing.T, entries []manifest.Entry, opts core.StreamOptions) []byte {
	t.Helper()
	var col core.CollectSink
	if _, err := core.RunBatchStream(context.Background(), core.NewManifestSource(entries, align.FormatAuto), &col, opts); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, r := range col.Results() {
		rec := core.NewGeneRecord(r)
		rec.RuntimeSec = 0
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func postJob(t *testing.T, base string, spec serve.JobSpec) serve.Status {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, msg)
	}
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getStatus(t *testing.T, base, id string) serve.Status {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// pollUntil polls the job until pred holds, failing at the deadline.
func pollUntil(t *testing.T, base, id string, pred func(serve.Status) bool, what string) serve.Status {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for {
		st := getStatus(t, base, id)
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s: %+v", id, what, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func fetchResults(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: %s", resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The core service loop: two jobs submitted concurrently over a real
// listener — one by manifest path, one inline — run on the one shared
// pool, and each job's streamed results are byte-identical to a direct
// standalone run of its manifest.
func TestServeSubmitPollFetchConcurrent(t *testing.T) {
	srv, err := serve.New(serve.Config{
		DataDir:     t.TempDir(),
		PoolWorkers: 2,
		MaxActive:   2,
		QueueDepth:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	maniA, entriesA := simManifest(t, 4, 1000)
	_, entriesB := simManifest(t, 3, 2000)
	var inline strings.Builder
	if err := manifest.Write(&inline, entriesB); err != nil {
		t.Fatal(err)
	}

	specA := serve.JobSpec{ManifestPath: maniA, MaxIter: 1, Seed: 1}
	specB := serve.JobSpec{Manifest: inline.String(), MaxIter: 1, Seed: 1, ShareFrequencies: true}
	// Submit both jobs concurrently; decode on the test goroutine.
	responses := make(chan *http.Response, 2)
	errs := make(chan error, 2)
	for _, spec := range []serve.JobSpec{specA, specB} {
		body, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			responses <- resp
		}()
	}
	sub := map[string]serve.Status{}
	for i := 0; i < 2; i++ {
		var resp *http.Response
		select {
		case err := <-errs:
			t.Fatal(err)
		case resp = <-responses:
		}
		if resp.StatusCode != http.StatusAccepted {
			msg, _ := io.ReadAll(resp.Body)
			t.Fatalf("submit: %s: %s", resp.Status, msg)
		}
		var s serve.Status
		if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if s.State != serve.StateQueued && s.State != serve.StateRunning {
			t.Fatalf("fresh job in state %s", s.State)
		}
		sub[s.ID] = s
	}
	if len(sub) != 2 {
		t.Fatalf("expected 2 distinct job ids, got %v", sub)
	}

	// The 4-gene job was submitted with Total filled from the manifest.
	finished := map[string]serve.Status{}
	for id := range sub {
		st := pollUntil(t, ts.URL, id, func(s serve.Status) bool { return s.State == serve.StateDone }, "done")
		finished[id] = st
		if st.Done != st.Total || st.Failed != 0 {
			t.Fatalf("job %s finished with %d/%d done, %d failed", id, st.Done, st.Total, st.Failed)
		}
	}

	for id, st := range finished {
		var entries []manifest.Entry
		var spec serve.JobSpec
		switch st.Total {
		case 4:
			entries, spec = entriesA, specA
		case 3:
			entries, spec = entriesB, specB
		default:
			t.Fatalf("job %s has unexpected total %d", id, st.Total)
		}
		want := expectedJSONL(t, entries, core.StreamOptions{BatchOptions: core.BatchOptions{
			Options:          core.Options{Engine: core.EngineSlim, MaxIterations: spec.MaxIter, Seed: spec.Seed},
			ShareFrequencies: spec.ShareFrequencies,
		}})
		if got := fetchResults(t, ts.URL, id); !bytes.Equal(got, want) {
			t.Fatalf("job %s results diverge from a standalone run\ngot:  %q\nwant: %q", id, got, want)
		}
	}

	// List and health round out the API.
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct{ Jobs []serve.Status }
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 2 {
		t.Fatalf("list has %d jobs, want 2", len(list.Jobs))
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
}

// DELETE must stop a running job promptly — no new gene starts; the
// job lands in state cancelled with its checkpoint intact.
func TestServeCancelRunningJob(t *testing.T) {
	srv, err := serve.New(serve.Config{
		DataDir:     t.TempDir(),
		PoolWorkers: 1,
		MaxActive:   1,
		QueueDepth:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	maniPath, _ := simManifest(t, 40, 3000)
	st := postJob(t, ts.URL, serve.JobSpec{ManifestPath: maniPath, MaxIter: 5, Seed: 1, Concurrency: 1})

	// Wait for real progress so the cancel hits a running job.
	pollUntil(t, ts.URL, st.ID, func(s serve.Status) bool { return s.Done >= 1 }, "first result")
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %s", resp.Status)
	}
	end := pollUntil(t, ts.URL, st.ID, func(s serve.Status) bool { return s.State == serve.StateCancelled }, "cancelled")
	if end.Done >= end.Total {
		t.Fatalf("cancelled job completed anyway: %d/%d", end.Done, end.Total)
	}

	// Cancelling a finished job is a conflict.
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel: %s, want 409", resp.Status)
	}
}

// A server restarted on the same data directory must recover an
// interrupted job from its checkpoint ledger and finish it with output
// byte-identical to an uninterrupted run.
func TestServeRestartResumesInterruptedJob(t *testing.T) {
	dataDir := t.TempDir()
	maniPath, entries := simManifest(t, 8, 4000)
	spec := serve.JobSpec{ManifestPath: maniPath, MaxIter: 1, Seed: 1, Concurrency: 1}

	srv1, err := serve.New(serve.Config{DataDir: dataDir, PoolWorkers: 1, MaxActive: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	st := postJob(t, ts1.URL, spec)
	pollUntil(t, ts1.URL, st.ID, func(s serve.Status) bool { return s.Done >= 2 }, "progress")
	if err := srv1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	srv2, err := serve.New(serve.Config{DataDir: dataDir, PoolWorkers: 1, MaxActive: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown(context.Background())
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	end := pollUntil(t, ts2.URL, st.ID, func(s serve.Status) bool { return s.State == serve.StateDone }, "done after restart")
	if end.Done != len(entries) || end.Failed != 0 {
		t.Fatalf("recovered job finished %d/%d (%d failed)", end.Done, end.Total, end.Failed)
	}
	want := expectedJSONL(t, entries, core.StreamOptions{BatchOptions: core.BatchOptions{
		Options: core.Options{Engine: core.EngineSlim, MaxIterations: spec.MaxIter, Seed: spec.Seed},
	}})
	if got := fetchResults(t, ts2.URL, st.ID); !bytes.Equal(got, want) {
		t.Fatalf("recovered job's results diverge\ngot:  %q\nwant: %q", got, want)
	}
}

// Intake limits: a full queue is a 503, a bad spec a 400, an unknown
// job a 404.
func TestServeIntakeErrors(t *testing.T) {
	srv, err := serve.New(serve.Config{DataDir: t.TempDir(), PoolWorkers: 1, MaxActive: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	maniPath, _ := simManifest(t, 30, 5000)
	// Saturate: one job running, one queued, then overflow. The first
	// may be dequeued at any moment, so allow one retry.
	okSubmits := 0
	var overflow *http.Response
	for i := 0; i < 6 && overflow == nil; i++ {
		body, _ := json.Marshal(serve.JobSpec{ManifestPath: maniPath, MaxIter: 5, Seed: 1, Concurrency: 1})
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			okSubmits++
		case http.StatusServiceUnavailable:
			overflow = resp
		default:
			t.Fatalf("submit %d: %s", i, resp.Status)
		}
		resp.Body.Close()
	}
	if overflow == nil {
		t.Fatalf("queue never overflowed after %d accepted submissions", okSubmits)
	}

	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"manifest_path":"/nonexistent"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %s, want 400", resp.Status)
	}
	resp, err = http.Get(ts.URL + "/jobs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %s, want 404", resp.Status)
	}
}
