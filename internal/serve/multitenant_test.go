package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// jsonDecode decodes a response body and closes it.
func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// writeFileAtomic replaces path via write-temp-then-rename, the way an
// operator's editor would, so a hot-reload poll never sees a half
// write.
func writeFileAtomic(path, content string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(content), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

const (
	tokAlice = "tok-alice-8f3a2b91"
	tokBob   = "tok-bob-55e01c77"
)

// newTenantServer starts a one-runner daemon with two tenants: alice
// (max_queued=2) and bob (unlimited).
func newTenantServer(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := serve.New(serve.Config{
		DataDir:     t.TempDir(),
		PoolWorkers: 1,
		MaxActive:   1,
		QueueDepth:  8,
		Tenants: []serve.Tenant{
			{Name: "alice", Token: tokAlice, MaxQueued: 2},
			{Name: "bob", Token: tokBob},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown(context.Background()) })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// authedGet issues a GET with a bearer token and returns the response.
func authedGet(t *testing.T, url, token string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// Unauthenticated and wrongly authenticated requests against a tenancy
// daemon: 401 (with a WWW-Authenticate challenge) and 403; /healthz and
// /metrics stay open.
func TestTenancyAuthRefusals(t *testing.T) {
	_, ts := newTenantServer(t)

	resp := authedGet(t, ts.URL+"/jobs", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no token: %s, want 401", resp.Status)
	}
	if got := resp.Header.Get("WWW-Authenticate"); got == "" {
		t.Fatal("401 without a WWW-Authenticate challenge")
	}

	resp = authedGet(t, ts.URL+"/jobs", "tok-mallory-00000000")
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("wrong token: %s, want 403", resp.Status)
	}

	for _, path := range []string{"/healthz", "/metrics"} {
		resp = authedGet(t, ts.URL+path, "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s unauthenticated: %s, want 200", path, resp.Status)
		}
	}
}

// The heart of the tenancy feature, end to end over HTTP: two tenants
// saturate a one-runner daemon; dispatch follows the documented
// round-robin-by-tenant order exactly, alice's max_queued quota answers
// 429, tenants cannot see each other's jobs, and every job's results
// are byte-identical to a standalone run.
func TestTenancyFairShareEndToEnd(t *testing.T) {
	_, ts := newTenantServer(t)
	alice := serve.NewClient(ts.URL)
	alice.Token = tokAlice
	bob := serve.NewClient(ts.URL)
	bob.Token = tokBob
	ctx := context.Background()

	// A long blocker occupies the single runner while the queues fill.
	blockMani, _ := simManifest(t, 40, 6000)
	smallMani, smallEntries := simManifest(t, 2, 6100)
	blockSpec := serve.JobSpec{ManifestPath: blockMani, MaxIter: 5, Seed: 1, Concurrency: 1}
	smallSpec := serve.JobSpec{ManifestPath: smallMani, MaxIter: 1, Seed: 1, Concurrency: 1}

	blocker, err := alice.Submit(ctx, blockSpec)
	if err != nil {
		t.Fatal(err)
	}
	if blocker.Tenant != "alice" {
		t.Fatalf("blocker tenant = %q, want alice", blocker.Tenant)
	}
	// Wait until it actually runs, so everything after it queues.
	deadline := time.Now().Add(time.Minute)
	for {
		st, err := alice.JobStatus(ctx, blocker.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == serve.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker never started: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Fill the queues: alice two more (her max_queued), bob two.
	a2, err := alice.Submit(ctx, smallSpec)
	if err != nil {
		t.Fatal(err)
	}
	a3, err := alice.Submit(ctx, smallSpec)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := bob.Submit(ctx, smallSpec)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := bob.Submit(ctx, smallSpec)
	if err != nil {
		t.Fatal(err)
	}

	// alice's third queued submission breaks her max_queued=2: 429.
	if _, err := alice.Submit(ctx, smallSpec); err == nil {
		t.Fatal("submission over max_queued succeeded, want 429")
	} else if ae, ok := err.(*serve.APIError); !ok || ae.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submission over max_queued: %v, want APIError 429", err)
	}
	// bob, under no quota, is still admitted.
	b3, err := bob.Submit(ctx, smallSpec)
	if err != nil {
		t.Fatalf("bob refused despite having no quota: %v", err)
	}

	// Cross-tenant visibility: bob's job is a 404 for alice, in both
	// directions, and each listing shows only the owner's jobs.
	if _, err := alice.JobStatus(ctx, b1.ID); !serve.IsNotFound(err) {
		t.Fatalf("alice sees bob's job: %v, want 404", err)
	}
	if _, err := bob.JobStatus(ctx, a2.ID); !serve.IsNotFound(err) {
		t.Fatalf("bob sees alice's job: %v, want 404", err)
	}
	aliceJobs, err := alice.ListJobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range aliceJobs {
		if st.Tenant != "alice" {
			t.Fatalf("alice's listing leaks %s (tenant %q)", st.ID, st.Tenant)
		}
	}
	if len(aliceJobs) != 3 {
		t.Fatalf("alice lists %d jobs, want 3", len(aliceJobs))
	}

	// Unblock the runner. With the blocker (alice's) done, the scan
	// starts strictly after alice: b1, then a2, b2, a3, b3.
	if _, err := alice.Cancel(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}

	order := []string{b1.ID, a2.ID, b2.ID, a3.ID, b3.ID}
	type started struct {
		id string
		at time.Time
	}
	var starts []started
	for _, id := range order {
		c := alice
		if id == b1.ID || id == b2.ID || id == b3.ID {
			c = bob
		}
		deadline := time.Now().Add(3 * time.Minute)
		for {
			st, err := c.JobStatus(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			if st.State == serve.StateDone {
				if st.Started == nil {
					t.Fatalf("done job %s has no start time", id)
				}
				starts = append(starts, started{id, *st.Started})
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never finished: %+v", id, st)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// One runner → strictly serial → start times are the dispatch
	// order. Sort by time and compare against the documented policy.
	sort.Slice(starts, func(i, j int) bool { return starts[i].at.Before(starts[j].at) })
	var got []string
	for _, s := range starts {
		got = append(got, s.id)
	}
	for i := range order {
		if got[i] != order[i] {
			t.Fatalf("dispatch order:\n got %v\nwant %v (round-robin by tenant)", got, order)
		}
	}

	// Determinism is tenant-blind: each small job's results are
	// byte-identical to a standalone run of the same manifest.
	want := expectedJSONL(t, smallEntries, core.StreamOptions{BatchOptions: core.BatchOptions{
		Options: core.Options{Engine: core.EngineSlim, MaxIterations: smallSpec.MaxIter, Seed: smallSpec.Seed},
	}})
	for _, probe := range []struct {
		c  *serve.Client
		id string
	}{{alice, a2.ID}, {bob, b1.ID}} {
		rc, err := probe.c.Results(ctx, probe.id)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, want) {
			t.Fatalf("job %s results diverge from a standalone run\ngot:  %q\nwant: %q", probe.id, data, want)
		}
	}

	// The health report carries per-tenant occupancy and counters that
	// reconcile with what just happened.
	var h serve.Health
	resp := authedGet(t, ts.URL+"/healthz", "")
	if err := jsonDecode(resp, &h); err != nil {
		t.Fatal(err)
	}
	byName := map[string]serve.TenantHealth{}
	for _, th := range h.Tenants {
		byName[th.Name] = th
	}
	if th := byName["alice"]; th.QuotaRefusals != 1 || th.Submitted != 3 {
		t.Fatalf("alice health = %+v, want 3 submitted, 1 quota refusal", th)
	}
	if th := byName["bob"]; th.Submitted != 3 || th.QuotaRefusals != 0 {
		t.Fatalf("bob health = %+v, want 3 submitted, 0 refusals", th)
	}
}

// Tenants-file hot reload: a token added after startup starts working
// without a restart; a broken edit keeps the previous set live.
func TestTenantsHotReload(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/tenants.conf"
	if err := writeFileAtomic(path, "alice "+tokAlice+"\n"); err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{
		DataDir:     t.TempDir(),
		PoolWorkers: 1,
		MaxActive:   1,
		QueueDepth:  4,
		TenantsPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := authedGet(t, ts.URL+"/jobs", tokBob)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("bob before reload: %s, want 403", resp.Status)
	}

	// Add bob and reload explicitly (the mtime watcher also picks this
	// up, but the test shouldn't sleep on a poll interval).
	if err := writeFileAtomic(path, "alice "+tokAlice+"\nbob "+tokBob+"\n"); err != nil {
		t.Fatal(err)
	}
	if err := srv.ReloadTenants(); err != nil {
		t.Fatal(err)
	}
	resp = authedGet(t, ts.URL+"/jobs", tokBob)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bob after reload: %s, want 200", resp.Status)
	}

	// A broken edit must not lock anyone out: reload fails, the
	// previous set stays.
	if err := writeFileAtomic(path, "not a valid line\n"); err != nil {
		t.Fatal(err)
	}
	if err := srv.ReloadTenants(); err == nil {
		t.Fatal("reload of a broken file succeeded")
	}
	resp = authedGet(t, ts.URL+"/jobs", tokBob)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bob after failed reload: %s, want 200 (previous set retained)", resp.Status)
	}
}
