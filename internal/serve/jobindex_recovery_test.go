package serve_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/serve"
)

// copyDir copies a flat data directory (the daemon's layout: spec,
// results, ledger, counts and index files side by side).
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// stateClass folds job states for the index-vs-directory-scan
// comparison: terminal states must match exactly; queued and running
// are the same "will run" class (recovery requeues asynchronously, so
// a snapshot may catch either).
func stateClass(state string) string {
	switch state {
	case serve.StateQueued, serve.StateRunning:
		return "pending"
	}
	return state
}

// The kill-9 scenario for the job index: the daemon dies with a torn
// final record on jobs.index. On restart the torn tail is dropped,
// finished jobs are still recovered from the surviving records,
// unfinished jobs revalidate and requeue to completion — and the whole
// recovery resolves the same job set the old directory-scan path finds
// on an identical data directory with no index at all.
func TestJobIndexTornTailRecovery(t *testing.T) {
	dataDir := t.TempDir()
	doneMani, doneEntries := simManifest(t, 2, 9000)
	bigMani, bigEntries := simManifest(t, 12, 9100)

	// Incarnation 1: one job runs to completion, a second is cut off
	// mid-run by shutdown, a third never leaves the queue.
	srv1, err := serve.New(serve.Config{DataDir: dataDir, PoolWorkers: 1, MaxActive: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	doneJob := postJob(t, ts1.URL, serve.JobSpec{ManifestPath: doneMani, MaxIter: 1, Seed: 1, Concurrency: 1})
	pollUntil(t, ts1.URL, doneJob.ID, func(s serve.Status) bool { return s.State == serve.StateDone }, "done")
	cutJob := postJob(t, ts1.URL, serve.JobSpec{ManifestPath: bigMani, MaxIter: 1, Seed: 1, Concurrency: 1})
	queuedJob := postJob(t, ts1.URL, serve.JobSpec{ManifestPath: doneMani, MaxIter: 1, Seed: 2, Concurrency: 1})
	pollUntil(t, ts1.URL, cutJob.ID, func(s serve.Status) bool { return s.Done >= 2 }, "progress")
	if err := srv1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// Tear the index tail the way a kill -9 mid-append would: chop the
	// last record off mid-bytes.
	idxPath := checkpoint.JobIndexPath(dataDir)
	data, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 20 {
		t.Fatalf("index implausibly small (%d bytes)", len(data))
	}
	if err := os.WriteFile(idxPath, data[:len(data)-17], 0o644); err != nil {
		t.Fatal(err)
	}

	// A twin directory with NO index at all exercises the old pure
	// directory-scan recovery for the equivalence check.
	scanDir := copyDir(t, dataDir)
	if err := os.Remove(checkpoint.JobIndexPath(scanDir)); err != nil {
		t.Fatal(err)
	}

	srv2, err := serve.New(serve.Config{DataDir: dataDir, PoolWorkers: 1, MaxActive: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown(context.Background())
	srvScan, err := serve.New(serve.Config{DataDir: scanDir, PoolWorkers: 1, MaxActive: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srvScan.Shutdown(context.Background())

	// Same jobs, same classes, from both recovery paths.
	indexJobs := map[string]string{}
	for _, st := range srv2.Jobs() {
		indexJobs[st.ID] = stateClass(st.State)
	}
	scanJobs := map[string]string{}
	for _, st := range srvScan.Jobs() {
		scanJobs[st.ID] = stateClass(st.State)
	}
	if len(indexJobs) != 3 {
		t.Fatalf("index recovery found %d jobs, want 3: %v", len(indexJobs), indexJobs)
	}
	for id, class := range scanJobs {
		if indexJobs[id] != class {
			t.Fatalf("recovery diverges for %s: index %q vs directory scan %q\nindex: %v\nscan:  %v",
				id, indexJobs[id], class, indexJobs, scanJobs)
		}
	}
	if indexJobs[doneJob.ID] != serve.StateDone {
		t.Fatalf("finished job recovered as %q, want done", indexJobs[doneJob.ID])
	}
	for _, id := range []string{cutJob.ID, queuedJob.ID} {
		if indexJobs[id] != "pending" {
			t.Fatalf("unfinished job %s recovered as %q, want requeued", id, indexJobs[id])
		}
	}

	// The interrupted jobs resume and finish with output byte-identical
	// to an uninterrupted standalone run; the finished job's results
	// survived untouched.
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	end := pollUntil(t, ts2.URL, cutJob.ID, func(s serve.Status) bool { return s.State == serve.StateDone }, "resumed done")
	if end.Done != len(bigEntries) || end.Failed != 0 {
		t.Fatalf("resumed job finished %d/%d (%d failed)", end.Done, end.Total, end.Failed)
	}
	pollUntil(t, ts2.URL, queuedJob.ID, func(s serve.Status) bool { return s.State == serve.StateDone }, "queued job done")

	wantBig := expectedJSONL(t, bigEntries, core.StreamOptions{BatchOptions: core.BatchOptions{
		Options: core.Options{Engine: core.EngineSlim, MaxIterations: 1, Seed: 1},
	}})
	if got := fetchResults(t, ts2.URL, cutJob.ID); !bytes.Equal(got, wantBig) {
		t.Fatalf("resumed job results diverge after torn-tail recovery\ngot:  %q\nwant: %q", got, wantBig)
	}
	wantDone := expectedJSONL(t, doneEntries, core.StreamOptions{BatchOptions: core.BatchOptions{
		Options: core.Options{Engine: core.EngineSlim, MaxIterations: 1, Seed: 1},
	}})
	if got := fetchResults(t, ts2.URL, doneJob.ID); !bytes.Equal(got, wantDone) {
		t.Fatalf("finished job results damaged by torn-tail recovery\ngot:  %q\nwant: %q", got, wantDone)
	}

	// The restarted index is coherent: a third incarnation on the same
	// directory sees the same three jobs, all terminal now.
	if err := srv2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts2.Close()
	srv3, err := serve.New(serve.Config{DataDir: dataDir, PoolWorkers: 1, MaxActive: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv3.Shutdown(context.Background())
	finals := srv3.Jobs()
	if len(finals) != 3 {
		t.Fatalf("third incarnation sees %d jobs, want 3", len(finals))
	}
	for _, st := range finals {
		if st.State != serve.StateDone {
			t.Fatalf("job %s is %q after full recovery, want done", st.ID, st.State)
		}
	}
}
