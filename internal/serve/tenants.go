// Tenants: the daemon's multi-tenancy configuration and token
// authentication. Tenancy is opt-in — a daemon started without a
// tenants file behaves exactly as before (no auth, one shared FIFO
// queue, unchanged wire shapes); with one, every /jobs request must
// carry a tenant's bearer token, per-tenant quotas gate admission, and
// the scheduler round-robins across tenants (see sched.go).
//
// # File format
//
// One tenant per line, whitespace-separated; '#' starts a comment and
// blank lines are ignored:
//
//	# name    token                  optional key=value quotas
//	alice     tok-alice-8f3a2b91     max_active=2 max_queued=16
//	bob       tok-bob-55e01c77
//
// Tokens are compared in constant time (crypto/subtle) against every
// configured tenant, so response timing leaks neither token bytes nor
// which tenant nearly matched. The file is hot-reloadable: the daemon
// re-reads it when its mtime changes (and on SIGHUP); a reload that
// fails to parse keeps the previous tenant set, so a bad edit can't
// lock every client out.
package serve

import (
	"crypto/subtle"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Tenant is one configured tenant: a name, its bearer token, and its
// admission quotas (0 = unlimited).
type Tenant struct {
	Name  string
	Token string
	// MaxActive caps the tenant's concurrently running jobs; further
	// jobs wait in the tenant's queue even when the pool has capacity.
	MaxActive int
	// MaxQueued caps the tenant's queued (not yet running) jobs;
	// submissions beyond it are refused with 429.
	MaxQueued int
}

const (
	maxTenantNameLen = 64
	minTokenLen      = 8
	maxTokenLen      = 256
	maxTenants       = 4096
)

// ParseTenants reads a tenants file. It validates shape (names, token
// length and charset, quota bounds) and global coherence (no duplicate
// names, no duplicate tokens). An empty file is a valid lockdown: with
// tenancy on and zero tenants, every request is refused.
func ParseTenants(r io.Reader) ([]Tenant, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	var tenants []Tenant
	names := make(map[string]bool)
	tokens := make(map[string]bool)
	for i, line := range strings.Split(string(data), "\n") {
		lineNo := i + 1
		if j := strings.IndexByte(line, '#'); j >= 0 {
			line = line[:j]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("tenants: line %d: want 'name token [key=value...]'", lineNo)
		}
		t := Tenant{Name: fields[0], Token: fields[1]}
		if err := validTenantName(t.Name); err != nil {
			return nil, fmt.Errorf("tenants: line %d: %w", lineNo, err)
		}
		if err := validToken(t.Token); err != nil {
			return nil, fmt.Errorf("tenants: line %d: tenant %s: %w", lineNo, t.Name, err)
		}
		if names[t.Name] {
			return nil, fmt.Errorf("tenants: line %d: duplicate tenant %q", lineNo, t.Name)
		}
		if tokens[t.Token] {
			return nil, fmt.Errorf("tenants: line %d: tenant %s reuses another tenant's token", lineNo, t.Name)
		}
		seenKey := make(map[string]bool)
		for _, kv := range fields[2:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("tenants: line %d: tenant %s: %q is not key=value", lineNo, t.Name, kv)
			}
			if seenKey[key] {
				return nil, fmt.Errorf("tenants: line %d: tenant %s: duplicate key %q", lineNo, t.Name, key)
			}
			seenKey[key] = true
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("tenants: line %d: tenant %s: %s must be a non-negative integer, got %q", lineNo, t.Name, key, val)
			}
			switch key {
			case "max_active":
				t.MaxActive = n
			case "max_queued":
				t.MaxQueued = n
			default:
				return nil, fmt.Errorf("tenants: line %d: tenant %s: unknown key %q", lineNo, t.Name, key)
			}
		}
		names[t.Name] = true
		tokens[t.Token] = true
		tenants = append(tenants, t)
		if len(tenants) > maxTenants {
			return nil, fmt.Errorf("tenants: more than %d tenants", maxTenants)
		}
	}
	return tenants, nil
}

// checkTenants validates a directly injected tenant slice
// (Config.Tenants) under the same rules the file parser applies.
func checkTenants(tenants []Tenant) error {
	names := make(map[string]bool)
	tokens := make(map[string]bool)
	if len(tenants) > maxTenants {
		return fmt.Errorf("tenants: more than %d tenants", maxTenants)
	}
	for _, t := range tenants {
		if err := validTenantName(t.Name); err != nil {
			return fmt.Errorf("tenants: %w", err)
		}
		if err := validToken(t.Token); err != nil {
			return fmt.Errorf("tenants: tenant %s: %w", t.Name, err)
		}
		if names[t.Name] {
			return fmt.Errorf("tenants: duplicate tenant %q", t.Name)
		}
		if tokens[t.Token] {
			return fmt.Errorf("tenants: tenant %s reuses another tenant's token", t.Name)
		}
		if t.MaxActive < 0 || t.MaxQueued < 0 {
			return fmt.Errorf("tenants: tenant %s: negative quota", t.Name)
		}
		names[t.Name] = true
		tokens[t.Token] = true
	}
	return nil
}

// LoadTenants reads a tenants file from disk.
func LoadTenants(path string) ([]Tenant, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	defer f.Close()
	ts, err := ParseTenants(f)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return ts, nil
}

func validTenantName(name string) error {
	if name == "" || len(name) > maxTenantNameLen {
		return fmt.Errorf("tenant name must be 1..%d characters", maxTenantNameLen)
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("tenant name %q: only [A-Za-z0-9._-] allowed", name)
		}
	}
	return nil
}

func validToken(tok string) error {
	if len(tok) < minTokenLen || len(tok) > maxTokenLen {
		return fmt.Errorf("token must be %d..%d bytes", minTokenLen, maxTokenLen)
	}
	for i := 0; i < len(tok); i++ {
		if tok[i] <= ' ' || tok[i] > '~' {
			return fmt.Errorf("token contains non-printable or whitespace byte 0x%02x", tok[i])
		}
	}
	return nil
}

// tenantSet is an immutable snapshot of the configured tenants, held
// behind an atomic pointer on the Server so auth never blocks on a
// reload.
type tenantSet struct {
	tenants []Tenant
	byName  map[string]*Tenant
}

func newTenantSet(tenants []Tenant) *tenantSet {
	ts := &tenantSet{
		tenants: append([]Tenant(nil), tenants...),
		byName:  make(map[string]*Tenant, len(tenants)),
	}
	for i := range ts.tenants {
		ts.byName[ts.tenants[i].Name] = &ts.tenants[i]
	}
	return ts
}

// authenticate resolves a bearer token to a tenant name. It compares
// against every configured token in constant time, never breaking
// early, so timing reveals neither a match's position nor its length
// class beyond the fixed length buckets.
func (ts *tenantSet) authenticate(token string) (string, bool) {
	name, found := "", false
	for i := range ts.tenants {
		t := &ts.tenants[i]
		match := len(token) == len(t.Token) &&
			subtle.ConstantTimeCompare([]byte(token), []byte(t.Token)) == 1
		if match && !found {
			name, found = t.Name, true
		}
	}
	return name, found
}

// limits returns a tenant's quotas; unknown tenants (e.g. pre-tenancy
// jobs recovered under the empty name) are unlimited.
func (ts *tenantSet) limits(name string) (maxActive, maxQueued int) {
	if t, ok := ts.byName[name]; ok {
		return t.MaxActive, t.MaxQueued
	}
	return 0, 0
}

// names returns the configured tenant names in file order.
func (ts *tenantSet) names() []string {
	out := make([]string, len(ts.tenants))
	for i := range ts.tenants {
		out[i] = ts.tenants[i].Name
	}
	return out
}
