package serve_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
)

// rawJSON fetches a URL and returns the undecoded body — the wire
// bytes, for shape assertions.
func rawJSON(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// keysOf walks a decoded JSON value collecting every object key.
func keysOf(v any, into map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, val := range x {
			into[k] = true
			keysOf(val, into)
		}
	case []any:
		for _, val := range x {
			keysOf(val, into)
		}
	}
}

// A daemon started without any tenant source must be wire-compatible
// with the pre-tenancy daemon: no auth demanded (and a stray
// Authorization header ignored), no tenant keys anywhere in the JSON
// surfaces, no tenant/auth series on /metrics, and no follow header on
// a plain results GET. This is the parity contract the opt-in feature
// is gated on.
func TestTenancyOffWireParity(t *testing.T) {
	srv, err := serve.New(serve.Config{
		DataDir:     t.TempDir(),
		PoolWorkers: 1,
		MaxActive:   1,
		QueueDepth:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	maniPath, _ := simManifest(t, 2, 7000)
	st := postJob(t, ts.URL, serve.JobSpec{ManifestPath: maniPath, MaxIter: 1, Seed: 1})
	pollUntil(t, ts.URL, st.ID, func(s serve.Status) bool { return s.State == serve.StateDone }, "done")

	// A client that sends a token anyway is served, not challenged.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer some-leftover-token")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request with stray token: %s, want 200 (tenancy off ignores auth)", resp.Status)
	}

	// No tenant-flavored keys on any JSON surface.
	for _, path := range []string{"/jobs", "/jobs/" + st.ID, "/healthz"} {
		var v any
		data := rawJSON(t, ts.URL+path)
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		keys := map[string]bool{}
		keysOf(v, keys)
		for _, forbidden := range []string{"tenant", "tenants", "quota_refusals"} {
			if keys[forbidden] {
				t.Fatalf("%s exposes key %q with tenancy off:\n%s", path, forbidden, data)
			}
		}
	}

	// GET /jobs without parameters keeps the exact original envelope:
	// one top-level "jobs" key, no pagination fields.
	var envelope map[string]json.RawMessage
	if err := json.Unmarshal(rawJSON(t, ts.URL+"/jobs"), &envelope); err != nil {
		t.Fatal(err)
	}
	if len(envelope) != 1 || envelope["jobs"] == nil {
		t.Fatalf("unpaginated /jobs envelope changed: %v", envelope)
	}

	// No tenancy series in the exposition.
	metrics := string(rawJSON(t, ts.URL+"/metrics"))
	for _, forbidden := range []string{
		"slimcodemld_tenant_", "slimcodemld_auth_requests_total", "slimcodemld_tenants_reloads_total",
	} {
		if strings.Contains(metrics, forbidden) {
			t.Fatalf("/metrics exposes %q with tenancy off", forbidden)
		}
	}

	// A plain results GET carries no follow capability header (the
	// header appears only on an actual follow stream).
	resp, err = http.Get(ts.URL + "/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Slimcodemld-Follow"); got != "" {
		t.Fatalf("plain results GET has follow header %q", got)
	}
}

// Pagination is opt-in per request and scoped like the listing: window
// arithmetic over the same submission order.
func TestJobsPagination(t *testing.T) {
	srv, err := serve.New(serve.Config{
		DataDir:     t.TempDir(),
		PoolWorkers: 1,
		MaxActive:   1,
		QueueDepth:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	maniPath, _ := simManifest(t, 1, 7100)
	var ids []string
	for i := 0; i < 5; i++ {
		st := postJob(t, ts.URL, serve.JobSpec{ManifestPath: maniPath, MaxIter: 1, Seed: 1})
		ids = append(ids, st.ID)
	}
	c := serve.NewClient(ts.URL)
	ctx := context.Background()

	var paged []string
	offset := 0
	for {
		page, err := c.ListJobsPage(ctx, offset, 2)
		if err != nil {
			t.Fatal(err)
		}
		if page.Total != 5 {
			t.Fatalf("page.Total = %d, want 5", page.Total)
		}
		for _, st := range page.Jobs {
			paged = append(paged, st.ID)
		}
		if page.NextOffset == 0 {
			break
		}
		offset = page.NextOffset
	}
	if len(paged) != 5 {
		t.Fatalf("pages yielded %d jobs, want 5: %v", len(paged), paged)
	}
	for i := range ids {
		if paged[i] != ids[i] {
			t.Fatalf("paged order %v diverges from submission order %v", paged, ids)
		}
	}

	// Bad window parameters are 400s.
	for _, q := range []string{"offset=-1", "limit=x", "offset=1e3"} {
		resp, err := http.Get(ts.URL + "/jobs?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /jobs?%s: %s, want 400", q, resp.Status)
		}
	}
}
