package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// Client is a typed client for the slimcodemld HTTP API — the same
// wire types (JobSpec, Status, Health) the server serves, so a
// coordinator process (internal/fanout, cmd/slimcodemlx) talks to a
// daemon without hand-rolling JSON. Methods take a context so callers
// can bound or cancel individual requests.
//
// Server-reported errors come back as *APIError carrying the HTTP
// status code; transport failures (connection refused, reset — the
// daemon is gone) come back as the underlying error. IsUnavailable and
// IsNotFound classify the API errors a coordinator routes on.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://host:8710".
	Base string
	// HTTP is the underlying client (nil = http.DefaultClient).
	HTTP *http.Client
	// Token, when set, is sent as "Authorization: Bearer <Token>" on
	// every request — required against a daemon with tenancy on,
	// harmless against one without (the header is ignored).
	Token string
}

// NewClient builds a client for the daemon at base, accepting bare
// "host:port" by assuming http.
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{Base: strings.TrimRight(base, "/")}
}

// APIError is a server-reported error: the HTTP status code plus the
// {"error": "..."} message body.
type APIError struct {
	StatusCode int
	Msg        string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: daemon answered %d: %s", e.StatusCode, e.Msg)
}

// IsUnavailable reports whether err is the daemon refusing work
// (503: full queue or shutting down) — retry later or elsewhere.
func IsUnavailable(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusServiceUnavailable
}

// IsNotFound reports whether err is the daemon not knowing the job
// (404) — e.g. it was purged or the data directory was recreated.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// newRequest builds a request with the client's credentials attached.
func (c *Client) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return nil, err
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	return req, nil
}

// do issues one request and decodes the JSON response into out
// (unless out is nil). Non-2xx responses become *APIError.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := c.newRequest(ctx, method, path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError turns a non-2xx response into an *APIError, falling back
// to the raw body when it is not the conventional {"error": ...}.
func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(data))
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	return &APIError{StatusCode: resp.StatusCode, Msg: msg}
}

// Submit posts a job spec and returns the accepted job's status.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (Status, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return Status{}, err
	}
	var st Status
	err = c.do(ctx, http.MethodPost, "/jobs", bytes.NewReader(body), &st)
	return st, err
}

// JobStatus fetches one job's status.
func (c *Client) JobStatus(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodGet, "/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// ListJobs fetches every job's status in submission order.
func (c *Client) ListJobs(ctx context.Context) ([]Status, error) {
	var out struct {
		Jobs []Status `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, "/jobs", nil, &out)
	return out.Jobs, err
}

// ListJobsPage fetches one window of the job listing (GET
// /jobs?offset=N&limit=M). limit <= 0 means "the rest".
func (c *Client) ListJobsPage(ctx context.Context, offset, limit int) (JobsPage, error) {
	var page JobsPage
	path := fmt.Sprintf("/jobs?offset=%d&limit=%d", offset, limit)
	err := c.do(ctx, http.MethodGet, path, nil, &page)
	return page, err
}

// Results streams the job's JSONL results (possibly mid-run: the
// stream is whatever prefix is durably on disk). The caller closes the
// reader.
func (c *Client) Results(ctx context.Context, id string) (io.ReadCloser, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/jobs/"+url.PathEscape(id)+"/results", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return resp.Body, nil
}

// FollowResults opens a follow-mode result stream (GET
// /jobs/{id}/results?follow=1&offset=N): a chunked JSONL stream that
// delivers each gene record as the daemon's checkpoint ledger makes it
// durable, ending when the job reaches a terminal state (or early on
// daemon shutdown — always at a line boundary, so the bytes received
// are a clean prefix of the final results).
//
// The returned bool reports whether the daemon actually followed
// (the X-Slimcodemld-Follow response header): an older daemon ignores
// the parameters and answers with a bounded point-in-time body, and
// the caller should fall back to polling. offset skips bytes already
// received — how a caller resumes after an interrupted stream.
func (c *Client) FollowResults(ctx context.Context, id string, offset int64) (io.ReadCloser, bool, error) {
	path := fmt.Sprintf("/jobs/%s/results?follow=1&offset=%d", url.PathEscape(id), offset)
	req, err := c.newRequest(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, false, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, false, decodeError(resp)
	}
	return resp.Body, resp.Header.Get(followHeader) == "1", nil
}

// Cancel stops the job (DELETE /jobs/{id}) and returns its status.
func (c *Client) Cancel(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodDelete, "/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Purge removes a finished job and its results+ledger(+counts) files
// from the daemon's data directory (DELETE /jobs/{id}?purge=1) —
// how a fan-out coordinator cleans up after collecting a shard.
func (c *Client) Purge(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/jobs/"+url.PathEscape(id)+"?purge=1", nil, nil)
}

// Health fetches the daemon's liveness and queue occupancy.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Metrics fetches the daemon's raw Prometheus text exposition
// (GET /metrics), unparsed — callers that want structure run it
// through obs.CheckExposition or their own scraper.
func (c *Client) Metrics(ctx context.Context) ([]byte, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}
