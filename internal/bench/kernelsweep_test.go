package bench

import (
	"bytes"
	"strings"
	"testing"
)

// The kernel sweep must time every registered kernel on every shape,
// naive first, and render one table row per (shape, kernel).
func TestRunKernelSweep(t *testing.T) {
	s := RunKernelSweep([][3]int{{8, 5, 3}, {16, 8, 8}}, 2)
	if len(s.Shapes) != 2 {
		t.Fatalf("got %d shapes, want 2", len(s.Shapes))
	}
	for _, sh := range s.Shapes {
		if len(sh.Timings) < 2 {
			t.Fatalf("shape %dx%dx%d timed %d kernels, want >= 2", sh.M, sh.N, sh.K, len(sh.Timings))
		}
		if sh.Timings[0].Kernel != "naive" {
			t.Fatalf("first kernel is %q, want naive", sh.Timings[0].Kernel)
		}
		for _, kt := range sh.Timings {
			if kt.NsPerOp <= 0 || kt.PackedNs <= 0 {
				t.Fatalf("kernel %s on %dx%dx%d has non-positive timing: %+v", kt.Kernel, sh.M, sh.N, sh.K, kt)
			}
		}
	}
	var buf bytes.Buffer
	PrintKernelSweep(&buf, s)
	out := buf.String()
	if !strings.Contains(out, "naive") || !strings.Contains(out, "blocked") || !strings.Contains(out, "8×5×3") {
		t.Fatalf("table missing expected rows:\n%s", out)
	}
}
