package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/blas"
	"repro/internal/mat"
)

// KernelShapes are the NT product shapes the kernel sweep times — the
// shapes the likelihood computation actually issues. 61×61×61 is the
// Eq. 9 transition build (Ỹ·Xᵀ on the codon space); 64×61×61 is the
// same with the row count on a register-tile boundary; 256×61×61 is
// one bundled pattern-block apply (a 256-pattern tile pushed through a
// 61×61 transition matrix); 8×61×61 is the ragged tail block.
var KernelShapes = [][3]int{
	{61, 61, 61},
	{64, 61, 61},
	{256, 61, 61},
	{8, 61, 61},
}

// KernelTiming is one kernel's ns/op on one shape, for the plain and
// the pre-packed entry points.
type KernelTiming struct {
	Kernel   string
	NsPerOp  int64
	PackedNs int64
	// SpeedupVsNaive is naive ns / this kernel's ns on the plain entry
	// point; the packed column shows what pack-once reuse adds on top.
	SpeedupVsNaive float64
}

// KernelShapeResult is every registered kernel timed on one shape.
type KernelShapeResult struct {
	M, N, K int
	Timings []KernelTiming
}

// KernelSweep is the per-dimension naive-vs-blocked comparison the
// README and the benchmark snapshot record. All kernels compute
// bit-identical results (the conformance suite enforces it); the sweep
// measures pure speed.
type KernelSweep struct {
	Shapes []KernelShapeResult
}

// timeNT returns the mean ns/op of fn over iters calls after one
// untimed warm-up.
func timeNT(iters int, fn func()) int64 {
	fn()
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return time.Since(start).Nanoseconds() / int64(iters)
}

// RunKernelSweep times every registered kernel on the given shapes
// (nil selects KernelShapes) with iters timed products per point.
func RunKernelSweep(shapes [][3]int, iters int) *KernelSweep {
	if shapes == nil {
		shapes = KernelShapes
	}
	if iters < 1 {
		iters = 1
	}
	rng := rand.New(rand.NewSource(42))
	out := &KernelSweep{}
	for _, sh := range shapes {
		m, n, k := sh[0], sh[1], sh[2]
		a := mat.New(m, k)
		b := mat.New(n, k)
		c := mat.New(m, n)
		for i := range a.Data {
			a.Data[i] = rng.Float64()
		}
		for i := range b.Data {
			b.Data[i] = rng.Float64()
		}
		res := KernelShapeResult{M: m, N: n, K: k}
		var naiveNs int64
		for _, kr := range blas.Kernels() {
			t := KernelTiming{Kernel: kr.Name()}
			t.NsPerOp = timeNT(iters, func() { kr.DgemmNT(1, a, b, 0, c) })
			var pb blas.PackedB
			kr.PackB(b, &pb)
			t.PackedNs = timeNT(iters, func() { kr.DgemmNTRowsPacked(1, a, &pb, 0, c, 0, m) })
			if kr.Name() == "naive" {
				naiveNs = t.NsPerOp
			}
			if naiveNs > 0 && t.NsPerOp > 0 {
				t.SpeedupVsNaive = float64(naiveNs) / float64(t.NsPerOp)
			}
			res.Timings = append(res.Timings, t)
		}
		out.Shapes = append(out.Shapes, res)
	}
	return out
}

// PrintKernelSweep writes the sweep as the per-dimension table the
// repository README records, GOMAXPROCS in the header like the other
// sweep tables (kernel products are single-threaded either way — the
// engine parallelizes across tiles, not inside one product).
func PrintKernelSweep(w io.Writer, s *KernelSweep) {
	fmt.Fprintf(w, "GEMM kernels — C ← A·Bᵀ ns/op per shape, plain and pre-packed B (GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%-14s %-10s %12s %12s %10s\n", "m×n×k", "kernel", "plain", "packed", "vs naive")
	for _, sh := range s.Shapes {
		dims := fmt.Sprintf("%d×%d×%d", sh.M, sh.N, sh.K)
		for _, t := range sh.Timings {
			fmt.Fprintf(w, "%-14s %-10s %12d %12d %10.2f\n",
				dims, t.Kernel, t.NsPerOp, t.PackedNs, t.SpeedupVsNaive)
			dims = ""
		}
	}
}
