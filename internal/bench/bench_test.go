package bench

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/bsm"
	"repro/internal/core"
	"repro/internal/sim"
)

func fakePair() *Pair {
	preset, _ := sim.PresetByID("i")
	mk := func(kind core.EngineKind, rt0, rt1 time.Duration, it0, it1 int, l0, l1 float64) *EngineResult {
		return &EngineResult{
			Engine:     kind,
			Dataset:    "i",
			H0:         &core.FitResult{Hypothesis: bsm.H0, LnL: l0, Iterations: it0},
			H1:         &core.FitResult{Hypothesis: bsm.H1, LnL: l1, Iterations: it1},
			RuntimeH0:  rt0,
			RuntimeH1:  rt1,
			Iterations: it0 + it1,
		}
	}
	return &Pair{
		Dataset:  preset,
		Baseline: mk(core.EngineBaseline, 85*time.Second, 100*time.Second, 108, 100, -1000, -995),
		Slim:     mk(core.EngineSlim, 43*time.Second, 50*time.Second, 108, 100, -1000.000001, -995.0000005),
	}
}

func TestComputeSpeedups(t *testing.T) {
	p := fakePair()
	s := ComputeSpeedups(p)
	if math.Abs(s.OverallH0-85.0/43.0) > 1e-12 {
		t.Fatalf("OverallH0 = %g", s.OverallH0)
	}
	if math.Abs(s.OverallH1-2.0) > 1e-12 {
		t.Fatalf("OverallH1 = %g", s.OverallH1)
	}
	if math.Abs(s.Combined-185.0/93.0) > 1e-12 {
		t.Fatalf("Combined = %g", s.Combined)
	}
	// Identical iteration counts → per-iteration equals overall.
	if math.Abs(s.PerIterH0-s.OverallH0) > 1e-12 || math.Abs(s.PerIterBoth-s.Combined) > 1e-12 {
		t.Fatalf("per-iteration speedups inconsistent: %+v", s)
	}
}

func TestComputeSpeedupsZeroGuard(t *testing.T) {
	p := fakePair()
	p.Slim.RuntimeH0 = 0
	p.Slim.RuntimeH1 = 0
	p.Slim.H0.Iterations = 0
	p.Slim.H1.Iterations = 0
	p.Slim.Iterations = 0
	s := ComputeSpeedups(p)
	if s.OverallH0 != 0 || s.PerIterBoth != 0 {
		t.Fatalf("zero-division guard failed: %+v", s)
	}
}

func TestComputeAccuracy(t *testing.T) {
	acc := ComputeAccuracy(fakePair())
	if acc.Dataset != "i" {
		t.Fatalf("dataset %q", acc.Dataset)
	}
	// D = |lnL − lnL̂|/|lnL| per §IV-1.
	wantH0 := 0.000001 / 1000.0
	wantH1 := 0.0000005 / 995.0
	if math.Abs(acc.DH0-wantH0) > 1e-15 {
		t.Fatalf("DH0 = %g, want %g", acc.DH0, wantH0)
	}
	if math.Abs(acc.DH1-wantH1) > 1e-15 {
		t.Fatalf("DH1 = %g, want %g", acc.DH1, wantH1)
	}
}

func TestPrintersProduceTables(t *testing.T) {
	var b strings.Builder
	PrintTable2(&b)
	if !strings.Contains(b.String(), "5004") {
		t.Fatal("Table II missing dataset ii length")
	}
	b.Reset()
	PrintTable3Header(&b)
	PrintTable3Row(&b, fakePair())
	out := b.String()
	if !strings.Contains(out, "185.00") || !strings.Contains(out, "208") {
		t.Fatalf("Table III row wrong:\n%s", out)
	}
	b.Reset()
	PrintTable4(&b, []*Pair{fakePair()})
	if !strings.Contains(b.String(), "Per-iteration speedup H0+H1") {
		t.Fatal("Table IV missing rows")
	}
	b.Reset()
	PrintAccuracy(&b, []Accuracy{ComputeAccuracy(fakePair())})
	if !strings.Contains(b.String(), "D (H1)") {
		t.Fatal("accuracy table missing header")
	}
	b.Reset()
	PrintFig3(&b, []Fig3Point{{Species: 15, OverallH0: 2, OverallH1: 2, Combined: 2}})
	if !strings.Contains(b.String(), "15") {
		t.Fatal("Fig3 table missing data")
	}
}

func TestQuickAndFullConfigs(t *testing.T) {
	q, f := Quick(), Full()
	if q.MaxIterations >= f.MaxIterations {
		t.Fatal("quick must cap iterations below full")
	}
}

// End-to-end: the smallest Fig. 3 point runs and produces a positive
// speedup structure.
func TestRunFig3Smallest(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run in -short mode")
	}
	pts, err := RunFig3([]int{6}, Config{MaxIterations: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Species != 6 {
		t.Fatalf("unexpected points: %+v", pts)
	}
	if !(pts[0].Combined > 0) {
		t.Fatalf("no speedup measured: %+v", pts[0])
	}
}

// The parallel sweep harness must time every strategy, and every
// strategy must agree bit-for-bit on the likelihood it computes.
func TestParallelSweep(t *testing.T) {
	fx, err := NewEvalFixture("i", 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := core.EngineSlimBundled.LikConfig()
	sweep, err := RunParallelSweep(fx, base, []int{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Serial <= 0 || sweep.Class <= 0 || len(sweep.Points) != 2 {
		t.Fatalf("incomplete sweep: %+v", sweep)
	}
	for _, p := range sweep.Points {
		if p.Eval <= 0 || !(p.SpeedupVsClass > 0) {
			t.Fatalf("bad point: %+v", p)
		}
	}

	serial, err := fx.NewEngine(base)
	if err != nil {
		t.Fatal(err)
	}
	want := serial.LogLikelihood()
	par := base
	par.Workers = 2
	eng, err := fx.NewEngine(par)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if got := eng.LogLikelihood(); got != want {
		t.Fatalf("block-pool lnL %0.17g != serial %0.17g", got, want)
	}

	var buf strings.Builder
	PrintParallelSweep(&buf, sweep)
	if !strings.Contains(buf.String(), "block-pool 2 workers") {
		t.Fatalf("table missing block-pool row:\n%s", buf.String())
	}
	// The header must record the core count the table was measured on,
	// so a 1-core recording carries its own caveat.
	if want := fmt.Sprintf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0)); !strings.Contains(buf.String(), want) {
		t.Fatalf("table header missing %s:\n%s", want, buf.String())
	}
}

// The transition sweep harness must time the serial and pooled
// transition phases, and the pooled rebuild must leave the engine
// computing the identical likelihood.
func TestTransitionSweep(t *testing.T) {
	fx, err := NewEvalFixture("i", 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := core.EngineSlim.LikConfig()
	sweep, err := RunTransitionSweep(fx, base, []int{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Serial <= 0 || len(sweep.Points) != 2 || sweep.Branches == 0 || sweep.Tasks < sweep.Branches {
		t.Fatalf("incomplete sweep: %+v", sweep)
	}
	for _, p := range sweep.Points {
		if p.Refresh <= 0 || !(p.SpeedupVsSerial > 0) {
			t.Fatalf("bad point: %+v", p)
		}
	}

	serial, err := fx.NewEngine(base)
	if err != nil {
		t.Fatal(err)
	}
	want := serial.LogLikelihood()
	par := base
	par.Workers = 2
	eng, err := fx.NewEngine(par)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.RefreshTransitions() // pooled build of every branch
	if got := eng.LogLikelihood(); got != want {
		t.Fatalf("pooled transitions changed lnL: %0.17g != serial %0.17g", got, want)
	}

	var buf strings.Builder
	PrintTransitionSweep(&buf, sweep)
	if !strings.Contains(buf.String(), "block-pool 2 workers") {
		t.Fatalf("table missing block-pool row:\n%s", buf.String())
	}
	if want := fmt.Sprintf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0)); !strings.Contains(buf.String(), want) {
		t.Fatalf("table header missing %s:\n%s", want, buf.String())
	}
}
