package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"repro/internal/core"
)

// Snapshot is a machine-readable recording of the parallel sweeps —
// the perf-trajectory format checked into the repository root
// (BENCH_fanout.json). Like the printed sweep tables, it embeds the
// measuring machine's GOMAXPROCS and an explicit caveat, so a
// recording taken on a 1-core CI container cannot be mistaken for a
// multicore scaling result.
type Snapshot struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	Caveat     string `json:"caveat"`
	// ParallelEval is the full-evaluation sweep (serial vs class vs
	// block pool) on the dataset-iii shape; durations in ns/op.
	ParallelEval SnapshotEval `json:"parallel_eval"`
	// TransitionRefresh is the transition-phase sweep (full P(t)
	// rebuild) across tree sizes of the dataset-iv family.
	TransitionRefresh []SnapshotRefresh `json:"transition_refresh"`
	// KernelSweep times every registered GEMM kernel on the NT shapes
	// the likelihood computation issues (single-thread ns/op; all
	// kernels are bit-exact, so this is pure speed).
	KernelSweep []SnapshotKernelShape `json:"kernel_sweep"`
	// WarmSweep contrasts a cold streaming run with a warm re-run
	// through the persistent cross-run cache (internal/persistcache).
	// The recording procedure asserts the warm run replayed every gene
	// byte-identically with zero eigendecompositions, so the ratio is a
	// sound single-thread measurement even on a 1-core container.
	WarmSweep *SnapshotWarm `json:"warm_sweep,omitempty"`
}

// SnapshotWarm mirrors WarmSweepResult with JSON-stable units.
type SnapshotWarm struct {
	Genes            int     `json:"genes"`
	ColdNs           int64   `json:"cold_ns"`
	WarmNs           int64   `json:"warm_ns"`
	ColdEigendecomps int     `json:"cold_eigendecompositions"`
	WarmEigendecomps int     `json:"warm_eigendecompositions"`
	Replayed         int     `json:"replayed"`
	Speedup          float64 `json:"speedup"`
}

// SnapshotKernelShape mirrors KernelShapeResult with JSON-stable units.
type SnapshotKernelShape struct {
	M       int                    `json:"m"`
	N       int                    `json:"n"`
	K       int                    `json:"k"`
	Kernels []SnapshotKernelTiming `json:"kernels"`
}

// SnapshotKernelTiming is one kernel's timing on one shape.
type SnapshotKernelTiming struct {
	Kernel         string  `json:"kernel"`
	NsPerOp        int64   `json:"ns_per_op"`
	PackedNsPerOp  int64   `json:"packed_ns_per_op"`
	SpeedupVsNaive float64 `json:"speedup_vs_naive"`
}

// SnapshotEval mirrors ParallelSweep with JSON-stable units.
type SnapshotEval struct {
	SerialNs int64           `json:"serial_ns_per_op"`
	ClassNs  int64           `json:"class_ns_per_op"`
	Points   []SnapshotPoint `json:"block_pool"`
}

// SnapshotRefresh mirrors TransitionSweep with JSON-stable units.
type SnapshotRefresh struct {
	Species  int             `json:"species"`
	Branches int             `json:"branches"`
	Tasks    int             `json:"builds_per_refresh"`
	SerialNs int64           `json:"serial_ns_per_op"`
	Points   []SnapshotPoint `json:"block_pool"`
}

// SnapshotPoint is one worker count's timing.
type SnapshotPoint struct {
	Workers int     `json:"workers"`
	NsPerOp int64   `json:"ns_per_op"`
	Speedup float64 `json:"speedup"`
}

// caveatFor states what a recording at this core count can and cannot
// demonstrate — carried inside the file, not in a README footnote.
func caveatFor(procs int) string {
	if procs <= 1 {
		return fmt.Sprintf("recorded with GOMAXPROCS=%d: all pool workers share one hardware thread, so these numbers demonstrate only that pool scheduling overhead is within noise of the serial engine, NOT multicore scaling; re-record on a >=8-core machine", procs)
	}
	return fmt.Sprintf("recorded with GOMAXPROCS=%d; speedups are bounded by that core count", procs)
}

// RecordSnapshot runs the two sweeps on the current machine and
// packages them as a snapshot: the parallel-evaluation sweep on the
// dataset-iii shape, and the transition sweep on the dataset-iv family
// at the given species counts. Every configuration computes
// bit-identical results; only scheduling differs.
func RecordSnapshot(workerCounts []int, species []int, evals int) (*Snapshot, error) {
	snap := &Snapshot{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Caveat:     caveatFor(runtime.GOMAXPROCS(0)),
	}

	fx, err := NewEvalFixture("iii", 0, 1)
	if err != nil {
		return nil, err
	}
	// The same engine configurations the repository's testing.B
	// benchmarks record: bundled kernels for the evaluation sweep, the
	// slim engine for the transition sweep.
	ps, err := RunParallelSweep(fx, core.EngineSlimBundled.LikConfig(), workerCounts, evals)
	if err != nil {
		return nil, err
	}
	snap.ParallelEval = SnapshotEval{
		SerialNs: ps.Serial.Nanoseconds(),
		ClassNs:  ps.Class.Nanoseconds(),
	}
	for _, p := range ps.Points {
		snap.ParallelEval.Points = append(snap.ParallelEval.Points, SnapshotPoint{
			Workers: p.Workers, NsPerOp: p.Eval.Nanoseconds(), Speedup: p.SpeedupVsClass,
		})
	}

	for _, sp := range species {
		fx, err := NewEvalFixture("iv", sp, 1)
		if err != nil {
			return nil, err
		}
		ts, err := RunTransitionSweep(fx, core.EngineSlim.LikConfig(), workerCounts, evals)
		if err != nil {
			return nil, err
		}
		ref := SnapshotRefresh{
			Species:  sp,
			Branches: ts.Branches,
			Tasks:    ts.Tasks,
			SerialNs: ts.Serial.Nanoseconds(),
		}
		for _, p := range ts.Points {
			ref.Points = append(ref.Points, SnapshotPoint{
				Workers: p.Workers, NsPerOp: p.Refresh.Nanoseconds(), Speedup: p.SpeedupVsSerial,
			})
		}
		snap.TransitionRefresh = append(snap.TransitionRefresh, ref)
	}

	ws, err := RunWarmSweep(8, 6, 48, 3)
	if err != nil {
		return nil, err
	}
	snap.WarmSweep = &SnapshotWarm{
		Genes:            ws.Genes,
		ColdNs:           ws.Cold.Nanoseconds(),
		WarmNs:           ws.Warm.Nanoseconds(),
		ColdEigendecomps: ws.ColdEigendecomps,
		WarmEigendecomps: ws.WarmEigendecomps,
		Replayed:         ws.Replayed,
		Speedup:          ws.Speedup(),
	}

	ks := RunKernelSweep(nil, 64*evals)
	for _, sh := range ks.Shapes {
		rec := SnapshotKernelShape{M: sh.M, N: sh.N, K: sh.K}
		for _, kt := range sh.Timings {
			rec.Kernels = append(rec.Kernels, SnapshotKernelTiming{
				Kernel:         kt.Kernel,
				NsPerOp:        kt.NsPerOp,
				PackedNsPerOp:  kt.PackedNs,
				SpeedupVsNaive: kt.SpeedupVsNaive,
			})
		}
		snap.KernelSweep = append(snap.KernelSweep, rec)
	}
	return snap, nil
}

// Write emits the snapshot as indented JSON.
func (s *Snapshot) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
