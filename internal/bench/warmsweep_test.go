package bench

import "testing"

// The warm sweep's own invariants: full replay, zero warm
// eigendecompositions, and a positive speedup — RunWarmSweep errors on
// any divergence, so success plus these fields is the whole contract.
func TestRunWarmSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("warm sweep runs real fits")
	}
	r, err := RunWarmSweep(3, 4, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Replayed != 3 || r.WarmEigendecomps != 0 {
		t.Fatalf("warm run did work: %+v", r)
	}
	if r.ColdEigendecomps == 0 || r.Cold <= 0 || r.Warm <= 0 {
		t.Fatalf("cold run not measured: %+v", r)
	}
	if r.Speedup() <= 0 {
		t.Fatalf("speedup %v", r.Speedup())
	}
}
