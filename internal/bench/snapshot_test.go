package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"strings"
	"testing"
)

// A tiny snapshot must round-trip through JSON with its GOMAXPROCS and
// caveat intact — the recorded file's contract.
func TestSnapshotRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("snapshot recording runs real sweeps")
	}
	snap, err := RecordSnapshot([]int{1, 2}, []int{8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if snap.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Fatalf("snapshot records GOMAXPROCS %d, machine has %d", snap.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
	if snap.Caveat == "" || !strings.Contains(snap.Caveat, "GOMAXPROCS") {
		t.Fatalf("caveat must carry the core count: %q", snap.Caveat)
	}
	if snap.ParallelEval.SerialNs <= 0 || len(snap.ParallelEval.Points) != 2 {
		t.Fatalf("parallel sweep missing: %+v", snap.ParallelEval)
	}
	if len(snap.TransitionRefresh) != 1 || snap.TransitionRefresh[0].SerialNs <= 0 {
		t.Fatalf("transition sweep missing: %+v", snap.TransitionRefresh)
	}
	if len(snap.KernelSweep) != len(KernelShapes) {
		t.Fatalf("kernel sweep has %d shapes, want %d", len(snap.KernelSweep), len(KernelShapes))
	}
	if ws := snap.WarmSweep; ws == nil || ws.Replayed != ws.Genes ||
		ws.WarmEigendecomps != 0 || ws.ColdEigendecomps == 0 || ws.Speedup <= 0 {
		t.Fatalf("warm sweep missing or incoherent: %+v", snap.WarmSweep)
	}
	for _, sh := range snap.KernelSweep {
		if len(sh.Kernels) < 2 || sh.Kernels[0].Kernel != "naive" || sh.Kernels[0].NsPerOp <= 0 {
			t.Fatalf("kernel sweep shape %dx%dx%d incomplete: %+v", sh.M, sh.N, sh.K, sh.Kernels)
		}
	}
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.GOMAXPROCS != snap.GOMAXPROCS || len(back.TransitionRefresh) != 1 {
		t.Fatalf("snapshot did not round-trip: %+v", back)
	}
}

// TestRecordBenchSnapshot writes the repository's recorded snapshot
// when BENCH_SNAPSHOT names the output path — the recording procedure
// documented in docs/OPERATIONS.md:
//
//	BENCH_SNAPSHOT=$PWD/BENCH_fanout.json go test ./internal/bench -run TestRecordBenchSnapshot
func TestRecordBenchSnapshot(t *testing.T) {
	out := os.Getenv("BENCH_SNAPSHOT")
	if out == "" {
		t.Skip("set BENCH_SNAPSHOT=<path> to record a snapshot")
	}
	snap, err := RecordSnapshot([]int{1, 2, 4, 8}, []int{8, 16, 32}, 30)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Write(f); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("recorded %s (GOMAXPROCS=%d)", out, snap.GOMAXPROCS)
}
