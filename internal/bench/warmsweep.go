package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/align"
	"repro/internal/checkpoint"
	"repro/internal/codon"
	"repro/internal/core"
	"repro/internal/manifest"
	"repro/internal/persistcache"
	"repro/internal/sim"
)

// WarmSweepResult contrasts a cold streaming run against a warm re-run
// of the same manifest through one persistent cross-run cache
// (internal/persistcache): the warm run must replay every gene
// byte-identically with zero optimizer iterations and zero
// eigendecompositions, so its time is pure metadata+replay overhead.
type WarmSweepResult struct {
	Genes int
	// Cold and Warm are the wall times of the two runs.
	Cold, Warm time.Duration
	// ColdEigendecomps counts the eigendecompositions the cold run
	// performed (decomposition-cache misses); WarmEigendecomps is the
	// warm run's total decomposition-cache traffic, which a full replay
	// leaves at zero.
	ColdEigendecomps, WarmEigendecomps int
	// Replayed is the number of genes the warm run served from the
	// result tier (must equal Genes).
	Replayed int
}

// Speedup is the cold/warm wall-time ratio.
func (r *WarmSweepResult) Speedup() float64 {
	if r.Warm <= 0 {
		return 0
	}
	return float64(r.Cold) / float64(r.Warm)
}

// RunWarmSweep simulates a manifest of small genes, runs it cold
// through core.RunBatchStream with a fresh persistent cache, then runs
// it again warm. It errors if the warm run's output is not
// byte-identical to the cold run's or if any gene escaped replay — the
// recorded speedup is only meaningful if the warm run did zero fitting.
func RunWarmSweep(genes, species, sites, maxIter int) (*WarmSweepResult, error) {
	dir, err := os.MkdirTemp("", "warmsweep")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	entries := make([]manifest.Entry, genes)
	for i := range entries {
		tree, err := sim.RandomTree(sim.TreeConfig{Species: species, MeanBranchLength: 0.2, Seed: int64(500 + i)})
		if err != nil {
			return nil, err
		}
		aln, err := sim.Simulate(tree, codon.Universal, sim.SeqConfig{
			Sites:  sites,
			Params: sim.TrueParams(),
			Seed:   int64(600 + i),
		})
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("g%02d", i)
		alnPath := filepath.Join(dir, name+".fasta")
		f, err := os.Create(alnPath)
		if err != nil {
			return nil, err
		}
		if err := align.WriteFasta(f, aln); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		treePath := filepath.Join(dir, name+".nwk")
		if err := os.WriteFile(treePath, []byte(tree.String()+"\n"), 0o644); err != nil {
			return nil, err
		}
		entries[i] = manifest.Entry{Name: name, AlignPath: alnPath, TreePath: treePath}
	}

	store, err := persistcache.Open(filepath.Join(dir, "cache"))
	if err != nil {
		return nil, err
	}
	opts := core.StreamOptions{
		BatchOptions: core.BatchOptions{
			Options: core.Options{Engine: core.EngineSlim, MaxIterations: maxIter, Seed: 1},
		},
		Persist: store,
	}
	opts.PersistFingerprint = checkpoint.OptionsFingerprint(opts.BatchOptions, align.FormatAuto)

	run := func() ([]byte, *core.StreamSummary, time.Duration, error) {
		var buf bytes.Buffer
		src := core.NewManifestSource(entries, align.FormatAuto)
		start := time.Now()
		sum, err := core.RunBatchStream(context.Background(), src, core.NewJSONLSink(&buf), opts)
		return buf.Bytes(), sum, time.Since(start), err
	}

	coldOut, coldSum, coldT, err := run()
	if err != nil {
		return nil, err
	}
	if coldSum.Failed != 0 {
		return nil, fmt.Errorf("bench: warm sweep cold run failed %d genes", coldSum.Failed)
	}
	warmOut, warmSum, warmT, err := run()
	if err != nil {
		return nil, err
	}
	if warmSum.Replayed != genes {
		return nil, fmt.Errorf("bench: warm run replayed %d of %d genes", warmSum.Replayed, genes)
	}
	// The plain JSONL sink stamps the cold run's real runtime_sec while
	// a replay carries the stored record's zero (the documented
	// exception); every other byte must agree.
	same, err := sameModuloRuntime(warmOut, coldOut)
	if err != nil {
		return nil, err
	}
	if !same {
		return nil, fmt.Errorf("bench: warm replay diverged from the cold run")
	}
	return &WarmSweepResult{
		Genes:            genes,
		Cold:             coldT,
		Warm:             warmT,
		ColdEigendecomps: coldSum.CacheMisses,
		WarmEigendecomps: warmSum.CacheHits + warmSum.CacheMisses,
		Replayed:         warmSum.Replayed,
	}, nil
}

// sameModuloRuntime compares two JSONL result streams with runtime_sec
// zeroed on both sides, relying on the records' canonical Go JSON
// round trip.
func sameModuloRuntime(a, b []byte) (bool, error) {
	norm := func(data []byte) ([]byte, error) {
		var out bytes.Buffer
		for _, line := range bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n")) {
			var rec core.GeneRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("bench: warm sweep output: %w", err)
			}
			rec.RuntimeSec = 0
			b, err := json.Marshal(rec)
			if err != nil {
				return nil, err
			}
			out.Write(b)
			out.WriteByte('\n')
		}
		return out.Bytes(), nil
	}
	na, err := norm(a)
	if err != nil {
		return false, err
	}
	nb, err := norm(b)
	if err != nil {
		return false, err
	}
	return bytes.Equal(na, nb), nil
}
