// Package bench is the experiment harness that regenerates the
// paper's evaluation section: the Table II dataset shapes, the
// §IV-1 accuracy comparison, Table III (runtimes and iterations),
// Table IV (speedup flavors) and Figure 3 (speedup vs species count).
// It is shared by the cmd/tables binary and the repository-level
// testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/bsm"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stat"
)

// Config scales the experiments. The paper's full runs take CPU hours
// (Table III reports 52 822 s for dataset iv on CodeML); Quick uses
// capped optimizer iterations so every table regenerates in minutes
// while preserving the comparison structure. Per-iteration speedups
// are unaffected by the cap; overall speedups regain the paper's
// iteration-count component only in Full mode.
type Config struct {
	// MaxIterations caps BFGS iterations per hypothesis (0 = the
	// engine default, i.e. effectively uncapped "full" behaviour).
	MaxIterations int
	// Seed drives dataset generation and starting points.
	Seed int64
}

// Quick returns the fast configuration used by default.
func Quick() Config { return Config{MaxIterations: 5, Seed: 1} }

// Full returns the faithful configuration (hours of CPU).
func Full() Config { return Config{MaxIterations: 500, Seed: 1} }

// EngineResult is one engine's H0+H1 run on one dataset.
type EngineResult struct {
	Engine     core.EngineKind
	Dataset    string
	H0, H1     *core.FitResult
	RuntimeH0  time.Duration
	RuntimeH1  time.Duration
	Iterations int // H0+H1, Table III's column
}

// Runtime returns the combined H0+H1 wall time.
func (r *EngineResult) Runtime() time.Duration { return r.RuntimeH0 + r.RuntimeH1 }

// RunEngine executes the full positive-selection test (H0+H1) with
// one engine on a generated dataset.
func RunEngine(ds *sim.Dataset, kind core.EngineKind, cfg Config) (*EngineResult, error) {
	an, err := core.NewAnalysis(ds.Alignment, ds.Tree, core.Options{
		Engine:        kind,
		MaxIterations: cfg.MaxIterations,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	h0, err := an.Fit(bsm.H0)
	if err != nil {
		return nil, err
	}
	h1, err := an.FitFrom(bsm.H1, h0.Params, h0.BranchLengths)
	if err != nil {
		return nil, err
	}
	return &EngineResult{
		Engine:     kind,
		Dataset:    ds.Preset.ID,
		H0:         h0,
		H1:         h1,
		RuntimeH0:  h0.Runtime,
		RuntimeH1:  h1.Runtime,
		Iterations: h0.Iterations + h1.Iterations,
	}, nil
}

// Pair holds the Baseline (CodeML) and Slim results on one dataset —
// one row of Tables III and IV.
type Pair struct {
	Dataset        sim.Preset
	Baseline, Slim *EngineResult
}

// RunPair benchmarks both engines on a freshly generated instance of
// the preset.
func RunPair(p sim.Preset, cfg Config) (*Pair, error) {
	return RunPairWithSpecies(p, p.Species, cfg)
}

// RunPairWithSpecies benchmarks both engines on a preset variant with
// the given species count (the Figure 3 sweep).
func RunPairWithSpecies(p sim.Preset, species int, cfg Config) (*Pair, error) {
	ds, err := p.GenerateWithSpecies(cfg.Seed, species)
	if err != nil {
		return nil, err
	}
	baseline, err := RunEngine(ds, core.EngineBaseline, cfg)
	if err != nil {
		return nil, err
	}
	slim, err := RunEngine(ds, core.EngineSlim, cfg)
	if err != nil {
		return nil, err
	}
	return &Pair{Dataset: p, Baseline: baseline, Slim: slim}, nil
}

// Speedups are the paper's three speedup flavors (§IV-2).
type Speedups struct {
	OverallH0   float64 // S_o for H0: baseline runtime / slim runtime
	OverallH1   float64
	Combined    float64 // S_c: H0+H1 runtimes combined
	PerIterH0   float64 // S_i: runtime normalized by iterations
	PerIterH1   float64
	PerIterBoth float64
}

// ComputeSpeedups derives Table IV's rows from a benchmark pair.
func ComputeSpeedups(p *Pair) Speedups {
	perIter := func(rt time.Duration, iters int) float64 {
		if iters == 0 {
			return 0
		}
		return rt.Seconds() / float64(iters)
	}
	s := Speedups{
		OverallH0: ratio(p.Baseline.RuntimeH0.Seconds(), p.Slim.RuntimeH0.Seconds()),
		OverallH1: ratio(p.Baseline.RuntimeH1.Seconds(), p.Slim.RuntimeH1.Seconds()),
		Combined:  ratio(p.Baseline.Runtime().Seconds(), p.Slim.Runtime().Seconds()),
		PerIterH0: ratio(perIter(p.Baseline.RuntimeH0, p.Baseline.H0.Iterations),
			perIter(p.Slim.RuntimeH0, p.Slim.H0.Iterations)),
		PerIterH1: ratio(perIter(p.Baseline.RuntimeH1, p.Baseline.H1.Iterations),
			perIter(p.Slim.RuntimeH1, p.Slim.H1.Iterations)),
		PerIterBoth: ratio(perIter(p.Baseline.Runtime(), p.Baseline.Iterations),
			perIter(p.Slim.Runtime(), p.Slim.Iterations)),
	}
	return s
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Accuracy is the paper's §IV-1 relative difference
// D = |lnL − lnL̂|/|lnL| between the two engines' optima.
type Accuracy struct {
	Dataset string
	DH0     float64
	DH1     float64
}

// ComputeAccuracy derives the accuracy row from a benchmark pair.
func ComputeAccuracy(p *Pair) Accuracy {
	return Accuracy{
		Dataset: p.Baseline.Dataset,
		DH0:     stat.RelativeDifference(p.Baseline.H0.LnL, p.Slim.H0.LnL),
		DH1:     stat.RelativeDifference(p.Baseline.H1.LnL, p.Slim.H1.LnL),
	}
}

// PrintTable2 writes the dataset inventory (the reproduction's
// counterpart to the paper's Table II).
func PrintTable2(w io.Writer) {
	fmt.Fprintln(w, "Table II — evaluation datasets (simulated stand-ins, see DESIGN.md)")
	fmt.Fprintf(w, "%-4s %-55s %8s %8s\n", "No.", "Characterization", "Species", "Codons")
	for _, p := range sim.TableII {
		fmt.Fprintf(w, "%-4s %-55s %8d %8d\n", p.ID, p.Description, p.Species, p.Codons)
	}
}

// PrintTable3Row writes one dataset's Table III row.
func PrintTable3Row(w io.Writer, p *Pair) {
	fmt.Fprintf(w, "%-4s %14.2f %10d %14.2f %10d\n",
		p.Dataset.ID,
		p.Baseline.Runtime().Seconds(), p.Baseline.Iterations,
		p.Slim.Runtime().Seconds(), p.Slim.Iterations)
}

// PrintTable3Header writes Table III's header.
func PrintTable3Header(w io.Writer) {
	fmt.Fprintln(w, "Table III — runtimes and iterations, H0+H1 combined")
	fmt.Fprintf(w, "%-4s %14s %10s %14s %10s\n",
		"No.", "CodeML[s]", "Iters", "SlimCodeML[s]", "Iters")
}

// PrintTable4 writes Table IV from the accumulated pairs.
func PrintTable4(w io.Writer, pairs []*Pair) {
	fmt.Fprintln(w, "Table IV — speedups of SlimCodeML over CodeML")
	fmt.Fprintf(w, "%-28s", "Dataset")
	for _, p := range pairs {
		fmt.Fprintf(w, "%8s", p.Dataset.ID)
	}
	fmt.Fprintln(w)
	rows := []struct {
		name string
		get  func(Speedups) float64
	}{
		{"Overall speedup H0", func(s Speedups) float64 { return s.OverallH0 }},
		{"Overall speedup H1", func(s Speedups) float64 { return s.OverallH1 }},
		{"Combined speedup H0+H1", func(s Speedups) float64 { return s.Combined }},
		{"Per-iteration speedup H0", func(s Speedups) float64 { return s.PerIterH0 }},
		{"Per-iteration speedup H1", func(s Speedups) float64 { return s.PerIterH1 }},
		{"Per-iteration speedup H0+H1", func(s Speedups) float64 { return s.PerIterBoth }},
	}
	sp := make([]Speedups, len(pairs))
	for i, p := range pairs {
		sp[i] = ComputeSpeedups(p)
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%-28s", row.name)
		for _, s := range sp {
			fmt.Fprintf(w, "%8.1f", row.get(s))
		}
		fmt.Fprintln(w)
	}
}

// Fig3Point is one x-position of Figure 3.
type Fig3Point struct {
	Species   int
	OverallH0 float64
	OverallH1 float64
	Combined  float64
}

// RunFig3 sweeps dataset iv over the species counts and returns the
// speedup series of Figure 3.
func RunFig3(speciesCounts []int, cfg Config) ([]Fig3Point, error) {
	preset, err := sim.PresetByID("iv")
	if err != nil {
		return nil, err
	}
	var out []Fig3Point
	for _, s := range speciesCounts {
		pair, err := RunPairWithSpecies(preset, s, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: fig3 at %d species: %w", s, err)
		}
		sp := ComputeSpeedups(pair)
		out = append(out, Fig3Point{
			Species:   s,
			OverallH0: sp.OverallH0,
			OverallH1: sp.OverallH1,
			Combined:  sp.Combined,
		})
	}
	return out, nil
}

// PrintFig3 writes the Figure 3 series as a table.
func PrintFig3(w io.Writer, pts []Fig3Point) {
	fmt.Fprintln(w, "Figure 3 — speedups on dataset iv for varying species counts")
	fmt.Fprintf(w, "%8s %12s %12s %16s\n", "Species", "Overall H0", "Overall H1", "Combined H0+H1")
	for _, p := range pts {
		fmt.Fprintf(w, "%8d %12.2f %12.2f %16.2f\n", p.Species, p.OverallH0, p.OverallH1, p.Combined)
	}
}

// PrintAccuracy writes the §IV-1 accuracy table.
func PrintAccuracy(w io.Writer, rows []Accuracy) {
	fmt.Fprintln(w, "Accuracy — relative lnL difference D = |lnL−lnL̂|/|lnL| (paper §IV-1)")
	fmt.Fprintf(w, "%-4s %14s %14s\n", "No.", "D (H0)", "D (H1)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-4s %14.3g %14.3g\n", r.Dataset, r.DH0, r.DH1)
	}
}
