package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/align"
	"repro/internal/bsm"
	"repro/internal/codon"
	"repro/internal/lik"
	"repro/internal/sim"
)

// EvalFixture is a ready-to-evaluate likelihood setup on a simulated
// dataset, shared by the parallel-engine benchmarks in this package
// and the repository-level testing.B benchmarks.
type EvalFixture struct {
	Dataset *sim.Dataset
	Pats    *align.Patterns
	Names   []string
	Model   lik.Model
}

// NewEvalFixture simulates the preset (scaled to the given species
// count; 0 keeps the preset's) and prepares the compressed patterns
// and the true-parameter branch-site model.
func NewEvalFixture(presetID string, species int, seed int64) (*EvalFixture, error) {
	preset, err := sim.PresetByID(presetID)
	if err != nil {
		return nil, err
	}
	if species == 0 {
		species = preset.Species
	}
	ds, err := preset.GenerateWithSpecies(seed, species)
	if err != nil {
		return nil, err
	}
	ca, err := align.EncodeCodons(ds.Alignment, codon.Universal)
	if err != nil {
		return nil, err
	}
	pats := align.Compress(ca)
	pi, err := codon.F61(codon.Universal, pats.CountCodonsCompressed())
	if err != nil {
		return nil, err
	}
	model, err := bsm.New(codon.Universal, bsm.H1, sim.TrueParams(), pi)
	if err != nil {
		return nil, err
	}
	return &EvalFixture{Dataset: ds, Pats: pats, Names: ca.Names, Model: model}, nil
}

// NewEngine builds an engine on the fixture with the model installed.
// Callers owning a block pool (cfg.Workers > 0) must Close it.
func (f *EvalFixture) NewEngine(cfg lik.Config) (*lik.Engine, error) {
	eng, err := lik.New(f.Dataset.Tree, f.Pats, f.Names, cfg)
	if err != nil {
		return nil, err
	}
	if err := eng.SetModel(f.Model); err != nil {
		eng.Close()
		return nil, err
	}
	return eng, nil
}

// timeEvals measures the mean wall time of a full likelihood pass,
// dirtying one branch per pass the way an optimizer step would.
func timeEvals(eng *lik.Engine, evals int) (time.Duration, error) {
	lens := eng.BranchLengths()
	branch := eng.BranchIDs()[0]
	eng.LogLikelihood() // warm caches outside the timed region
	start := time.Now()
	for i := 0; i < evals; i++ {
		lens[branch] *= 1.0000001
		if err := eng.SetBranchLengths(lens); err != nil {
			return 0, err
		}
		_ = eng.LogLikelihood()
	}
	return time.Since(start) / time.Duration(evals), nil
}

// ParallelPoint is one worker count's block-pool timing.
type ParallelPoint struct {
	Workers int
	Eval    time.Duration
	// SpeedupVsClass is classEval / blockEval: >1 means the block pool
	// beats the 4-way class engine at this worker count.
	SpeedupVsClass float64
}

// ParallelSweep compares the execution strategies on one fixture:
// serial, class-parallel (the seed engine's 4-way ceiling) and the
// block-pool engine across worker counts.
type ParallelSweep struct {
	Serial time.Duration
	Class  time.Duration
	Points []ParallelPoint
}

// RunParallelSweep times the strategies with evals full passes each.
// The same lik.Config kernels are used throughout, so the contrast
// isolates the scheduling strategy; every configuration computes
// bit-identical log-likelihoods.
func RunParallelSweep(f *EvalFixture, base lik.Config, workerCounts []int, evals int) (*ParallelSweep, error) {
	out := &ParallelSweep{}

	serial, err := f.NewEngine(base)
	if err != nil {
		return nil, err
	}
	if out.Serial, err = timeEvals(serial, evals); err != nil {
		return nil, err
	}

	clsCfg := base
	clsCfg.Parallel = true
	cls, err := f.NewEngine(clsCfg)
	if err != nil {
		return nil, err
	}
	if out.Class, err = timeEvals(cls, evals); err != nil {
		return nil, err
	}

	for _, w := range workerCounts {
		cfg := base
		cfg.Workers = w
		eng, err := f.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		d, err := timeEvals(eng, evals)
		eng.Close()
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, ParallelPoint{
			Workers:        w,
			Eval:           d,
			SpeedupVsClass: ratio(out.Class.Seconds(), d.Seconds()),
		})
	}
	return out, nil
}

// TransitionPoint is one worker count's pooled transition-phase
// timing.
type TransitionPoint struct {
	Workers int
	Refresh time.Duration
	// SpeedupVsSerial is serialRefresh / pooledRefresh: >1 means the
	// pooled transition phase beats the serial rebuild.
	SpeedupVsSerial float64
}

// TransitionSweep compares the transition-matrix phase — rebuilding
// every branch's P(t) products after a full invalidation, the work a
// full-gradient re-install triggers — serially and on the block pool.
type TransitionSweep struct {
	Branches int
	Tasks    int // (branch, slot) builds per refresh
	Serial   time.Duration
	Points   []TransitionPoint
}

// timeRefresh measures the mean wall time of rebuilding every branch's
// transition matrices from a fully dirty state.
func timeRefresh(eng *lik.Engine, evals int) (time.Duration, error) {
	lens := eng.BranchLengths()
	dirtyAll := func() error {
		for _, v := range eng.BranchIDs() {
			lens[v] *= 1.0000001
		}
		return eng.SetBranchLengths(lens)
	}
	if err := dirtyAll(); err != nil { // warm workspaces outside the timed region
		return 0, err
	}
	eng.RefreshTransitions()
	start := time.Now()
	for i := 0; i < evals; i++ {
		if err := dirtyAll(); err != nil {
			return 0, err
		}
		eng.RefreshTransitions()
	}
	return time.Since(start) / time.Duration(evals), nil
}

// RunTransitionSweep times the transition phase with evals full
// refreshes each, serial first, then pooled at each worker count. The
// rebuilt matrices are bit-identical in every configuration; only the
// scheduling differs.
func RunTransitionSweep(f *EvalFixture, base lik.Config, workerCounts []int, evals int) (*TransitionSweep, error) {
	serial, err := f.NewEngine(base)
	if err != nil {
		return nil, err
	}
	out := &TransitionSweep{Branches: len(serial.BranchIDs())}
	before := serial.Stats().TransitionBuilds
	serial.RefreshTransitions()
	out.Tasks = serial.Stats().TransitionBuilds - before
	if out.Serial, err = timeRefresh(serial, evals); err != nil {
		return nil, err
	}
	for _, w := range workerCounts {
		cfg := base
		cfg.Workers = w
		eng, err := f.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		d, err := timeRefresh(eng, evals)
		eng.Close()
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, TransitionPoint{
			Workers:         w,
			Refresh:         d,
			SpeedupVsSerial: ratio(out.Serial.Seconds(), d.Seconds()),
		})
	}
	return out, nil
}

// PrintTransitionSweep writes the sweep as the table the repository
// README records. The header carries the machine's GOMAXPROCS so a
// recorded table documents how many cores it was measured on — a
// 1-core recording can only show pooled overhead, not scaling.
func PrintTransitionSweep(w io.Writer, s *TransitionSweep) {
	fmt.Fprintf(w, "Transition phase — full rebuild of %d branches (%d builds) per strategy (GOMAXPROCS=%d)\n", s.Branches, s.Tasks, runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%-24s %14s %10s\n", "strategy", "refresh", "vs serial")
	fmt.Fprintf(w, "%-24s %14s %10s\n", "serial", s.Serial, "1.00")
	for _, p := range s.Points {
		fmt.Fprintf(w, "%-24s %14s %10.2f\n",
			fmt.Sprintf("block-pool %d workers", p.Workers), p.Refresh, p.SpeedupVsSerial)
	}
}

// PrintParallelSweep writes the sweep as the speedup table the
// repository README records, with the machine's GOMAXPROCS in the
// header (see PrintTransitionSweep).
func PrintParallelSweep(w io.Writer, s *ParallelSweep) {
	fmt.Fprintf(w, "Parallel engine — full-evaluation wall time per strategy (GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%-24s %14s %10s\n", "strategy", "eval", "vs class")
	fmt.Fprintf(w, "%-24s %14s %10s\n", "serial", s.Serial, fmt.Sprintf("%.2f", ratio(s.Class.Seconds(), s.Serial.Seconds())))
	fmt.Fprintf(w, "%-24s %14s %10s\n", "class (4-way)", s.Class, "1.00")
	for _, p := range s.Points {
		fmt.Fprintf(w, "%-24s %14s %10.2f\n",
			fmt.Sprintf("block-pool %d workers", p.Workers), p.Eval, p.SpeedupVsClass)
	}
}
