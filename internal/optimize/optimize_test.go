package optimize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogTransformRoundTrip(t *testing.T) {
	tr := LogTransform{Lo: 1}
	for _, x := range []float64{1.0001, 1.5, 2, 10, 1e6} {
		y := tr.Internal(x)
		back := tr.External(y)
		if math.Abs(back-x) > 1e-9*(1+x) {
			t.Fatalf("round trip %g → %g → %g", x, y, back)
		}
	}
	if tr.External(-1e9) <= 1 {
		t.Fatal("External must stay above Lo")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic below Lo")
		}
	}()
	tr.Internal(0.5)
}

func TestLogitTransformRoundTrip(t *testing.T) {
	tr := LogitTransform{Lo: 0, Hi: 1}
	for _, x := range []float64{1e-6, 0.2, 0.5, 0.9, 1 - 1e-6} {
		back := tr.External(tr.Internal(x))
		if math.Abs(back-x) > 1e-9 {
			t.Fatalf("round trip failed for %g: %g", x, back)
		}
	}
	// Range respected at extremes.
	if v := tr.External(1e3); !(v < 1) {
		t.Fatalf("External(large) = %g escapes (0,1)", v)
	}
	if v := tr.External(-1e3); !(v > 0) {
		t.Fatalf("External(-large) = %g escapes (0,1)", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic outside (0,1)")
		}
	}()
	tr.Internal(1.5)
}

func TestIdentityTransform(t *testing.T) {
	tr := IdentityTransform{}
	if tr.External(3.5) != 3.5 || tr.Internal(-2) != -2 {
		t.Fatal("identity transform not identity")
	}
}

func TestSimplexTransformRoundTrip(t *testing.T) {
	tr := SimplexTransform{K: 3}
	cases := [][]float64{{0.5, 0.3}, {0.01, 0.01}, {0.98, 0.01}, {1.0 / 3, 1.0 / 3}}
	for _, x := range cases {
		y := tr.Internal(x)
		back := tr.External(y)
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-12 {
				t.Fatalf("round trip %v → %v", x, back)
			}
		}
	}
}

func TestSimplexTransformAlwaysValid(t *testing.T) {
	tr := SimplexTransform{K: 3}
	f := func(y0, y1 float64) bool {
		if math.Abs(y0) > 500 || math.Abs(y1) > 500 {
			return true
		}
		x := tr.External([]float64{y0, y1})
		sum := 0.0
		for _, v := range x {
			if !(v >= 0) || v >= 1 {
				return false
			}
			sum += v
		}
		return sum < 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSimplexTransformPanics(t *testing.T) {
	tr := SimplexTransform{K: 3}
	for _, bad := range [][]float64{{0.5}, {0.5, 0.6}, {0, 0.5}} {
		func() {
			defer func() { recover() }()
			tr.Internal(bad)
			if len(bad) == 2 && bad[0] > 0 && bad[0]+bad[1] < 1 {
				return // actually valid
			}
			t.Fatalf("expected panic for %v", bad)
		}()
	}
}

func TestMinimizeQuadratic(t *testing.T) {
	// f(x) = Σ (x_i − i)², minimum at x_i = i.
	p := Problem{F: func(x []float64) float64 {
		s := 0.0
		for i, v := range x {
			d := v - float64(i)
			s += d * d
		}
		return s
	}}
	res := Minimize(p, make([]float64, 5), Options{})
	if !res.Converged {
		t.Fatalf("did not converge: %s", res.Status)
	}
	for i, v := range res.X {
		if math.Abs(v-float64(i)) > 1e-5 {
			t.Fatalf("x[%d] = %g", i, v)
		}
	}
	if res.F > 1e-9 {
		t.Fatalf("f = %g", res.F)
	}
}

func TestMinimizeRosenbrock(t *testing.T) {
	rosen := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	for _, opts := range []Options{
		{Gradient: GradCentral, LineSearch: SearchInterpolating, MaxIterations: 500},
		{Gradient: GradForward, LineSearch: SearchHalving, MaxIterations: 2000, FTol: 1e-14, FDStep: 1e-8},
	} {
		res := Minimize(Problem{F: rosen}, []float64{-1.2, 1}, opts)
		if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
			t.Fatalf("opts %+v: got %v (f=%g, %s)", opts, res.X, res.F, res.Status)
		}
	}
}

func TestMinimizeWithAnalyticGradient(t *testing.T) {
	p := Problem{
		F: func(x []float64) float64 { return (x[0] - 3) * (x[0] - 3) },
		Grad: func(x, g []float64) {
			g[0] = 2 * (x[0] - 3)
		},
	}
	res := Minimize(p, []float64{-10}, Options{})
	if math.Abs(res.X[0]-3) > 1e-6 {
		t.Fatalf("x = %v", res.X)
	}
	// Analytic gradient means each gradient costs no F evaluations
	// beyond line search probes; GradEvals counted separately.
	if res.GradEvals == 0 {
		t.Fatal("gradient evaluations not counted")
	}
}

func TestMinimizeNonConvex(t *testing.T) {
	// f(x) = sin(x) + x²/20 has its global minimum where
	// cos(x) + x/10 = 0, at x ≈ -1.4276.
	f := func(x []float64) float64 { return math.Sin(x[0]) + x[0]*x[0]/20 }
	res := Minimize(Problem{F: f}, []float64{0}, Options{})
	if math.Abs(res.X[0]-(-1.4276)) > 1e-2 {
		t.Fatalf("x = %v, f = %g", res.X, res.F)
	}
	if math.Abs(math.Cos(res.X[0])+res.X[0]/10) > 1e-4 {
		t.Fatalf("first-order condition violated at %g", res.X[0])
	}
}

func TestMinimizeIterationLimit(t *testing.T) {
	// Tight iteration cap must be respected and reported.
	rosen := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res := Minimize(Problem{F: rosen}, []float64{-1.2, 1}, Options{MaxIterations: 3})
	if res.Iterations > 3 {
		t.Fatalf("iterations %d exceeds cap", res.Iterations)
	}
}

func TestMinimizeCountsEvaluations(t *testing.T) {
	n := 0
	p := Problem{F: func(x []float64) float64 {
		n++
		return x[0] * x[0]
	}}
	res := Minimize(p, []float64{4}, Options{})
	if res.FuncEvals != n {
		t.Fatalf("FuncEvals = %d, actual calls %d", res.FuncEvals, n)
	}
}

func TestMinimizeAlreadyAtOptimum(t *testing.T) {
	p := Problem{F: func(x []float64) float64 { return x[0] * x[0] }}
	res := Minimize(p, []float64{0}, Options{})
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("should converge immediately: %+v", res)
	}
}

// Minimization through transforms: maximize a beta-like likelihood
// over (0,1) via LogitTransform, checking the external optimum.
func TestMinimizeThroughTransform(t *testing.T) {
	tr := LogitTransform{Lo: 0, Hi: 1}
	// Negative log of x^3(1-x)^7: maximum at x = 0.3.
	p := Problem{F: func(y []float64) float64 {
		x := tr.External(y[0])
		return -(3*math.Log(x) + 7*math.Log(1-x))
	}}
	res := Minimize(p, []float64{0}, Options{})
	x := tr.External(res.X[0])
	if math.Abs(x-0.3) > 1e-5 {
		t.Fatalf("optimum at %g, want 0.3", x)
	}
}

func TestNumGradAccuracy(t *testing.T) {
	f := func(x []float64) float64 { return math.Exp(x[0]) * math.Sin(x[1]) }
	x := []float64{0.5, 1.2}
	fx := f(x)
	g := make([]float64, 2)
	numGrad(f, x, fx, g, Options{FDStep: 1e-7, Gradient: GradCentral})
	wantG0 := math.Exp(0.5) * math.Sin(1.2)
	wantG1 := math.Exp(0.5) * math.Cos(1.2)
	if math.Abs(g[0]-wantG0) > 1e-6 || math.Abs(g[1]-wantG1) > 1e-6 {
		t.Fatalf("central gradient %v, want [%g %g]", g, wantG0, wantG1)
	}
	numGrad(f, x, fx, g, Options{FDStep: 1e-7, Gradient: GradForward})
	if math.Abs(g[0]-wantG0) > 1e-4 || math.Abs(g[1]-wantG1) > 1e-4 {
		t.Fatalf("forward gradient %v", g)
	}
	// x must be restored.
	if x[0] != 0.5 || x[1] != 1.2 {
		t.Fatal("numGrad did not restore x")
	}
}

func TestCheckDomain(t *testing.T) {
	CheckDomain([]float64{1, 2, 3}) // must not panic
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for NaN")
		}
	}()
	CheckDomain([]float64{1, math.NaN()})
}

// Property: on random positive-definite quadratics BFGS reaches the
// known optimum.
func TestMinimizeRandomQuadratics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		// Diagonal-dominant SPD matrix A and target c; f = (x−c)ᵀA(x−c).
		a := make([][]float64, n)
		c := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = 0.1 * rng.NormFloat64()
			}
			a[i][i] += float64(n)
			c[i] = rng.NormFloat64()
		}
		obj := func(x []float64) float64 {
			s := 0.0
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					s += (x[i] - c[i]) * (a[i][j] + a[j][i]) / 2 * (x[j] - c[j])
				}
			}
			return s
		}
		res := Minimize(Problem{F: obj}, make([]float64, n), Options{MaxIterations: 400})
		for i := range c {
			if math.Abs(res.X[i]-c[i]) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Objectives that return +Inf outside their domain (how the likelihood
// wrappers signal constraint violations) must not derail the line
// search: it backtracks into the domain.
func TestMinimizeWithInfiniteBarrier(t *testing.T) {
	evals := 0
	f := func(x []float64) float64 {
		evals++
		if x[0] >= 10 {
			return math.Inf(1)
		}
		return (x[0] - 3) * (x[0] - 3)
	}
	// Start near the barrier: the first Newton-ish probes overshoot
	// into the Inf region and must backtrack.
	res := Minimize(Problem{F: f}, []float64{9.5}, Options{MaxIterations: 200})
	if math.Abs(res.X[0]-3) > 1e-4 {
		t.Fatalf("optimum at %g, want 3 (%s)", res.X[0], res.Status)
	}
	if evals == 0 {
		t.Fatal("objective never evaluated")
	}
}

// The same barrier expressed through a transform — how the likelihood
// code actually handles constrained parameters — must be easy: the
// internal surface is a clean quadratic.
func TestMinimizeBarrierViaTransform(t *testing.T) {
	tr := LogTransform{Lo: 0}
	// Minimize (ln x − 1)² over x > 0 in internal coordinates y = ln x.
	f := func(y []float64) float64 {
		x := tr.External(y[0])
		return (math.Log(x) - 1) * (math.Log(x) - 1)
	}
	res := Minimize(Problem{F: f}, []float64{tr.Internal(0.1)}, Options{})
	if got := tr.External(res.X[0]); math.Abs(got-math.E) > 1e-4 {
		t.Fatalf("optimum at %g, want e", got)
	}
}

// NaN from the objective must be treated like failure, not accepted.
func TestMinimizeRejectsNaN(t *testing.T) {
	calls := 0
	f := func(x []float64) float64 {
		calls++
		if x[0] > 2 {
			return math.NaN()
		}
		return (x[0] - 1.5) * (x[0] - 1.5)
	}
	res := Minimize(Problem{F: f}, []float64{0}, Options{MaxIterations: 100})
	if math.IsNaN(res.F) {
		t.Fatal("optimizer accepted a NaN objective value")
	}
	if math.Abs(res.X[0]-1.5) > 1e-4 {
		t.Fatalf("optimum at %g, want 1.5", res.X[0])
	}
}
