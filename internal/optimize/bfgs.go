package optimize

import (
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/mat"
)

// Problem is an objective to minimize. F must be defined everywhere
// the optimizer probes (callers use the Transform types to make their
// domain all of ℝⁿ). Grad, when non-nil, supplies the gradient —
// engines provide one that exploits cheap single-branch perturbations;
// when nil a numerical gradient per Options.Gradient is used.
type Problem struct {
	F    func(x []float64) float64
	Grad func(x []float64, g []float64)
}

// GradMethod selects the finite-difference scheme for the default
// numerical gradient.
type GradMethod int

const (
	// GradCentral uses central differences (two evaluations per
	// coordinate, O(h²) accurate) — SlimCodeML's configuration.
	GradCentral GradMethod = iota
	// GradForward uses forward differences (one evaluation per
	// coordinate, O(h)) — the cheaper scheme PAML's ming2 uses.
	GradForward
)

// LineSearchKind selects the step-length rule.
type LineSearchKind int

const (
	// SearchInterpolating backtracks with quadratic interpolation of
	// the step (faster convergence per evaluation).
	SearchInterpolating LineSearchKind = iota
	// SearchHalving backtracks by simple halving, as classic
	// implementations do.
	SearchHalving
)

// Options tunes the BFGS run. Zero values select the defaults noted
// on each field.
type Options struct {
	MaxIterations int            // default 200
	GradTol       float64        // absolute ‖g‖∞ tolerance, default 1e-4
	FTol          float64        // relative Δf tolerance, default 1e-9
	Gradient      GradMethod     // default GradCentral
	LineSearch    LineSearchKind // default SearchInterpolating
	FDStep        float64        // finite-difference base step, default 1e-7
}

func (o *Options) fill() {
	if o.MaxIterations == 0 {
		o.MaxIterations = 200
	}
	if o.GradTol == 0 {
		o.GradTol = 1e-4
	}
	if o.FTol == 0 {
		o.FTol = 1e-9
	}
	if o.FDStep == 0 {
		o.FDStep = 1e-7
	}
}

// Result reports the outcome of a minimization.
type Result struct {
	X          []float64
	F          float64
	Gradient   []float64
	Iterations int // BFGS iterations — the paper's Table III counter
	FuncEvals  int
	GradEvals  int
	Converged  bool
	Status     string
}

// Minimize runs BFGS from x0 and returns the best point found. The
// inverse Hessian approximation starts at the identity and is updated
// with the standard BFGS formula; updates that would destroy positive
// definiteness (sᵀy ≤ 0, possible with numerical gradients) are
// skipped. A failed line search triggers one steepest-descent restart
// before giving up.
func Minimize(p Problem, x0 []float64, opts Options) *Result {
	opts.fill()
	n := len(x0)
	res := &Result{X: append([]float64(nil), x0...)}

	evalF := func(x []float64) float64 {
		res.FuncEvals++
		return p.F(x)
	}
	evalGrad := func(x []float64, fx float64, g []float64) {
		res.GradEvals++
		if p.Grad != nil {
			p.Grad(x, g)
			return
		}
		numGrad(evalF, x, fx, g, opts)
	}

	x := res.X
	fx := evalF(x)
	g := make([]float64, n)
	evalGrad(x, fx, g)

	h := mat.Identity(n) // inverse Hessian approximation
	d := make([]float64, n)
	xNew := make([]float64, n)
	gNew := make([]float64, n)
	s := make([]float64, n)
	y := make([]float64, n)
	hy := make([]float64, n)
	restarted := false
	stallReset := false
	smallSteps := 0

	for iter := 0; iter < opts.MaxIterations; iter++ {
		if mat.VecMaxAbs(g) <= opts.GradTol {
			res.Converged = true
			res.Status = "gradient tolerance reached"
			break
		}
		res.Iterations++

		// d = -H·g.
		blas.Dgemv(false, -1, h, g, 0, d)
		slope := blas.Ddot(g, d)
		if slope >= 0 {
			// H lost positive definiteness; restart from steepest
			// descent.
			resetIdentity(h)
			for i := range d {
				d[i] = -g[i]
			}
			slope = blas.Ddot(g, d)
		}

		step, fNew, ok := lineSearch(evalF, x, fx, d, slope, xNew, opts)
		if !ok {
			if restarted {
				res.Status = "line search failed"
				break
			}
			restarted = true
			resetIdentity(h)
			continue
		}
		restarted = false

		evalGrad(xNew, fNew, gNew)
		for i := range s {
			s[i] = step * d[i]
			y[i] = gNew[i] - g[i]
		}
		sy := blas.Ddot(s, y)
		if sy > 1e-12*blas.Dnrm2(s)*blas.Dnrm2(y) {
			bfgsUpdate(h, s, y, sy, hy)
		}

		fPrev := fx
		copy(x, xNew)
		fx = fNew
		copy(g, gNew)

		// Require the relative improvement to stay below tolerance on
		// two consecutive iterations: a single tiny step can be a
		// stalled line search, not convergence. If progress stalls
		// while the gradient is still clearly nonzero, the inverse
		// Hessian has gone bad (common with numerical gradients in
		// flat regions); reset it once before giving up.
		if math.Abs(fPrev-fx) <= opts.FTol*(1+math.Abs(fx)) {
			smallSteps++
			if smallSteps >= 2 {
				if mat.VecMaxAbs(g) > 100*opts.GradTol && !stallReset {
					stallReset = true
					smallSteps = 0
					resetIdentity(h)
					continue
				}
				res.Converged = true
				res.Status = "function tolerance reached"
				break
			}
		} else {
			smallSteps = 0
		}
	}
	if res.Status == "" {
		res.Status = "iteration limit reached"
	}
	res.F = fx
	res.Gradient = g
	copy(res.X, x)
	return res
}

// numGrad fills g with a finite-difference gradient. fx is the
// objective value at x, reused by forward differences.
func numGrad(f func([]float64) float64, x []float64, fx float64, g []float64, opts Options) {
	for i := range x {
		hStep := opts.FDStep * (1 + math.Abs(x[i]))
		old := x[i]
		switch opts.Gradient {
		case GradForward:
			x[i] = old + hStep
			g[i] = (f(x) - fx) / hStep
		default: // GradCentral
			x[i] = old + hStep
			fp := f(x)
			x[i] = old - hStep
			fm := f(x)
			g[i] = (fp - fm) / (2 * hStep)
		}
		x[i] = old
	}
}

// lineSearch finds a step along d satisfying the Armijo sufficient
// decrease condition f(x+td) ≤ f(x) + c1·t·gᵀd. It returns the step,
// the new objective value, and whether it succeeded; xNew holds the
// accepted point.
func lineSearch(f func([]float64) float64, x []float64, fx float64, d []float64, slope float64, xNew []float64, opts Options) (float64, float64, bool) {
	const (
		c1       = 1e-4
		maxTrial = 50
		minStep  = 1e-14
	)
	step := 1.0
	for trial := 0; trial < maxTrial && step > minStep; trial++ {
		for i := range xNew {
			xNew[i] = x[i] + step*d[i]
		}
		fNew := f(xNew)
		if fNew <= fx+c1*step*slope && !math.IsNaN(fNew) {
			return step, fNew, true
		}
		if opts.LineSearch == SearchHalving || math.IsNaN(fNew) || math.IsInf(fNew, 0) {
			step *= 0.5
			continue
		}
		// Quadratic interpolation through f(0), f'(0), f(step).
		denom := 2 * (fNew - fx - slope*step)
		next := -slope * step * step / denom
		// Safeguard the interpolated step inside [0.1, 0.5]·step.
		if !(next > 0.1*step) || math.IsNaN(next) {
			next = 0.1 * step
		}
		if next > 0.5*step {
			next = 0.5 * step
		}
		step = next
	}
	return 0, fx, false
}

// bfgsUpdate applies the inverse-Hessian BFGS update
// H ← (I − ρsyᵀ)H(I − ρysᵀ) + ρssᵀ with ρ = 1/sᵀy.
func bfgsUpdate(h *mat.Matrix, s, y []float64, sy float64, hy []float64) {
	rho := 1 / sy
	// hy = H·y.
	blas.Dgemv(false, 1, h, y, 0, hy)
	yhy := blas.Ddot(y, hy)
	// H += ρ(1 + ρ·yᵀHy)·ssᵀ − ρ(s·(Hy)ᵀ + (Hy)·sᵀ).
	c := rho * (1 + rho*yhy)
	n := h.Rows
	for i := 0; i < n; i++ {
		row := h.Row(i)
		si, hyi := s[i], hy[i]
		for j := 0; j < n; j++ {
			row[j] += c*si*s[j] - rho*(si*hy[j]+hyi*s[j])
		}
	}
}

func resetIdentity(h *mat.Matrix) {
	h.Zero()
	for i := 0; i < h.Rows; i++ {
		h.Set(i, i, 1)
	}
}

// CheckDomain panics with a descriptive message when a caller-supplied
// x contains NaN or Inf — catching optimizer escapes early.
func CheckDomain(x []float64) {
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			panic(fmt.Sprintf("optimize: coordinate %d is %g", i, v))
		}
	}
}
