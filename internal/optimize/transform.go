// Package optimize provides the maximization machinery the paper's
// §II-B calls for: the BFGS quasi-Newton method with inexact line
// search, numerical gradients, and the smooth bijections that map the
// model's constrained parameters (κ > 0, ω0 ∈ (0,1), ω2 > 1, simplex
// proportions, branch lengths ≥ 0) onto the unconstrained space BFGS
// works in.
package optimize

import "math"

// Transform is a smooth bijection between an unconstrained internal
// coordinate y ∈ ℝ and a constrained external parameter x.
type Transform interface {
	// External maps internal → constrained.
	External(y float64) float64
	// Internal maps constrained → internal. It panics if x violates
	// the constraint.
	Internal(x float64) float64
}

// IdentityTransform leaves the parameter unconstrained.
type IdentityTransform struct{}

// External returns y.
func (IdentityTransform) External(y float64) float64 { return y }

// Internal returns x.
func (IdentityTransform) Internal(x float64) float64 { return x }

// LogTransform maps ℝ → (lo, ∞): x = lo + e^y. With lo = 0 it
// constrains κ and branch lengths positive; with lo = 1 it gives the
// ω2 > 1 constraint of H1.
type LogTransform struct {
	Lo float64
}

// External returns Lo + e^y with the exponential clamped to
// [1e-12, 1e12], so extreme internal coordinates can neither collapse
// onto the boundary Lo (violating the strict constraint) nor overflow.
func (t LogTransform) External(y float64) float64 {
	e := math.Exp(y)
	if e < 1e-12 {
		e = 1e-12
	} else if e > 1e12 {
		e = 1e12
	}
	return t.Lo + e
}

// Internal returns log(x − Lo).
func (t LogTransform) Internal(x float64) float64 {
	d := x - t.Lo
	if !(d > 0) {
		panic("optimize: LogTransform.Internal outside domain")
	}
	return math.Log(d)
}

// LogitTransform maps ℝ → (Lo, Hi) via the logistic function; it
// constrains ω0 ∈ (0, 1) and keeps branch lengths inside a box when an
// upper bound is wanted.
type LogitTransform struct {
	Lo, Hi float64
}

// External returns Lo + (Hi−Lo)·σ(y), clamped a hair inside the open
// interval so that extreme internal coordinates cannot saturate to the
// closed endpoints in floating point (the boundary values violate the
// model's strict constraints).
func (t LogitTransform) External(y float64) float64 {
	const eps = 1e-12
	u := 1 / (1 + math.Exp(-y))
	if u < eps {
		u = eps
	} else if u > 1-eps {
		u = 1 - eps
	}
	return t.Lo + (t.Hi-t.Lo)*u
}

// Internal returns the logit of the normalized coordinate.
func (t LogitTransform) Internal(x float64) float64 {
	u := (x - t.Lo) / (t.Hi - t.Lo)
	if !(u > 0) || !(u < 1) {
		panic("optimize: LogitTransform.Internal outside domain")
	}
	return math.Log(u / (1 - u))
}

// SimplexTransform maps K−1 internal coordinates to the first K−1
// components of a point in the open K-simplex using the additive
// log-ratio parameterization:
//
//	x_k = e^{y_k} / (1 + Σ_j e^{y_j}),  k < K−1 components free,
//
// the last component being the remainder. It provides the (p0, p1)
// constraint p0, p1 > 0, p0 + p1 < 1 with K = 3.
type SimplexTransform struct {
	K int // simplex dimension (number of proportions, ≥ 2)
}

// External maps internal coordinates y (length K−1) to the first K−1
// proportions.
func (t SimplexTransform) External(y []float64) []float64 {
	if len(y) != t.K-1 {
		panic("optimize: SimplexTransform.External dimension mismatch")
	}
	// Stable softmax with an implicit 0 logit for the last component.
	maxY := 0.0
	for _, v := range y {
		if v > maxY {
			maxY = v
		}
	}
	denom := math.Exp(-maxY) // the implicit last component
	exps := make([]float64, len(y))
	for i, v := range y {
		exps[i] = math.Exp(v - maxY)
		denom += exps[i]
	}
	out := make([]float64, len(y))
	for i := range out {
		out[i] = exps[i] / denom
	}
	// Clamp a hair inside the open simplex: extreme coordinates would
	// otherwise saturate to exact 0/1 in floating point, leaving the
	// constrained domain.
	const eps = 1e-9
	sum := 0.0
	for i := range out {
		if out[i] < eps {
			out[i] = eps
		}
		sum += out[i]
	}
	if sum > 1-eps {
		scale := (1 - eps) / sum
		for i := range out {
			out[i] *= scale
		}
	}
	return out
}

// Internal maps proportions (first K−1 components, each > 0 with sum
// < 1) back to internal coordinates.
func (t SimplexTransform) Internal(x []float64) []float64 {
	if len(x) != t.K-1 {
		panic("optimize: SimplexTransform.Internal dimension mismatch")
	}
	rest := 1.0
	for _, v := range x {
		if !(v > 0) {
			panic("optimize: SimplexTransform.Internal outside domain")
		}
		rest -= v
	}
	if !(rest > 0) {
		panic("optimize: SimplexTransform.Internal proportions sum ≥ 1")
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = math.Log(v / rest)
	}
	return out
}
