// Benchmarks regenerating the paper's evaluation section, one bench
// per table/figure (see DESIGN.md's per-experiment index):
//
//	E1  BenchmarkTable2_DatasetShapes      dataset generation (Table II)
//	E2  TestAccuracy / via cmd/tables      relative lnL difference (§IV-1)
//	E3  BenchmarkTable3/*                  runtimes + iterations (Table III)
//	E4  BenchmarkTable4_Speedup/*          speedup flavors (Table IV)
//	E5  BenchmarkFig3/*                    speedup vs species (Figure 3)
//	E6  BenchmarkExpm/*                    Eq. 9 vs Eq. 10 kernel ablation
//	E7  BenchmarkCondVec/*                 Eq. 12 conditional-vector ablation
//
// plus design-choice ablations from DESIGN.md:
//
//	BenchmarkLikelihoodEval/*       one pruning pass per engine strategy
//	BenchmarkBranchUpdate/*         O(depth) path update vs full pruning
//	BenchmarkDecompositionReuse/*   cached eigendecomposition vs per-branch Padé
//
// Full-scale regeneration (paper-size iteration counts) is
// cmd/tables -full; these benches run the same harness with capped
// iterations, and for the two largest workloads with documented
// scaled shapes, so `go test -bench=.` finishes in minutes. Within a
// bench the baseline/slim comparison is the paper's comparison.
package main

import (
	"fmt"
	"testing"

	"repro/internal/align"
	"repro/internal/bench"
	"repro/internal/blas"
	"repro/internal/bsm"
	"repro/internal/codon"
	"repro/internal/core"
	"repro/internal/expm"
	"repro/internal/lik"
	"repro/internal/mat"
	"repro/internal/sim"
)

// benchCfg caps optimizer iterations so one H0+H1 run is seconds, not
// hours. Per-iteration speedups (Table IV rows 4-6) are unaffected.
func benchCfg() bench.Config { return bench.Config{MaxIterations: 2, Seed: 1} }

// benchPreset returns the Table II preset, scaled down where the full
// shape would make a default bench run take tens of minutes: dataset
// ii drops from 5004 to 600 codons and dataset iv from 95 to 40
// species. cmd/tables runs the full shapes.
func benchPreset(b *testing.B, id string) (sim.Preset, int) {
	b.Helper()
	p, err := sim.PresetByID(id)
	if err != nil {
		b.Fatal(err)
	}
	species := p.Species
	switch id {
	case "ii":
		p.Codons = 600
	case "iv":
		species = 40
	}
	return p, species
}

// E1 — Table II: dataset generation at the paper's shapes.
func BenchmarkTable2_DatasetShapes(b *testing.B) {
	for _, preset := range sim.TableII {
		b.Run("dataset_"+preset.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ds, err := preset.Generate(int64(i + 1))
				if err != nil {
					b.Fatal(err)
				}
				if ds.Alignment.NumSeqs() != preset.Species {
					b.Fatal("wrong shape")
				}
			}
		})
	}
}

// E3 — Table III: full H0+H1 runs per dataset and engine. The
// iterations-per-run metric is reported alongside time.
func BenchmarkTable3(b *testing.B) {
	for _, id := range []string{"i", "ii", "iii", "iv"} {
		preset, species := benchPreset(b, id)
		ds, err := preset.GenerateWithSpecies(1, species)
		if err != nil {
			b.Fatal(err)
		}
		for _, kind := range []core.EngineKind{core.EngineBaseline, core.EngineSlim} {
			b.Run(fmt.Sprintf("dataset_%s/%s", id, kind), func(b *testing.B) {
				iters := 0
				for i := 0; i < b.N; i++ {
					res, err := bench.RunEngine(ds, kind, benchCfg())
					if err != nil {
						b.Fatal(err)
					}
					iters += res.Iterations
				}
				b.ReportMetric(float64(iters)/float64(b.N), "iterations/run")
			})
		}
	}
}

// E4 — Table IV: the combined speedup on dataset i, measured inside
// one benchmark so both engines face identical data and caps.
func BenchmarkTable4_Speedup(b *testing.B) {
	preset, species := benchPreset(b, "i")
	for i := 0; i < b.N; i++ {
		pair, err := bench.RunPairWithSpecies(preset, species, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		sp := bench.ComputeSpeedups(pair)
		b.ReportMetric(sp.Combined, "combined-speedup")
		b.ReportMetric(sp.PerIterBoth, "per-iter-speedup")
	}
}

// E5 — Figure 3: speedup at increasing species counts on the dataset
// iv family. The full 15–95 sweep is cmd/tables -fig3.
func BenchmarkFig3(b *testing.B) {
	preset, _ := benchPreset(b, "iv")
	for _, species := range []int{15, 25, 40} {
		b.Run(fmt.Sprintf("species_%d", species), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pair, err := bench.RunPairWithSpecies(preset, species, benchCfg())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(bench.ComputeSpeedups(pair).Combined, "combined-speedup")
			}
		})
	}
}

// --- Kernel-level ablations -----------------------------------------

func kernelFixture(b *testing.B) *expm.Decomposition {
	b.Helper()
	pi := codon.UniformFrequencies(codon.Universal)
	rate, err := codon.NewRate(codon.Universal, 2, 0.3, pi)
	if err != nil {
		b.Fatal(err)
	}
	d, err := expm.Decompose(rate.S, rate.Pi)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// E6 — the paper's Eq. 9 vs Eq. 10 contrast at n = 61.
func BenchmarkExpm(b *testing.B) {
	d := kernelFixture(b)
	ws := d.NewWorkspace()
	p := mat.New(d.N(), d.N())
	for _, m := range []expm.Method{expm.MethodNaiveGEMM, expm.MethodGEMM, expm.MethodSYRK} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.PMatrix(0.37, m, p, ws)
			}
		})
	}
	b.Run("symkernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d.SymKernel(0.37, p, ws)
		}
	})
	b.Run("eigendecomposition", func(b *testing.B) {
		pi := codon.UniformFrequencies(codon.Universal)
		rate, err := codon.NewRate(codon.Universal, 2, 0.3, pi)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := expm.Decompose(rate.S, rate.Pi); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E7 — the conditional-vector strategies of §III-B / Eq. 12: per-site
// general mat-vec, per-site symmetric kernel, and BLAS-3 bundling,
// measured on a realistic pattern block.
func BenchmarkCondVec(b *testing.B) {
	d := kernelFixture(b)
	ws := d.NewWorkspace()
	n := d.N()
	const npat = 256
	p := mat.New(n, n)
	kernel := mat.New(n, n)
	d.PMatrix(0.37, expm.MethodSYRK, p, ws)
	d.SymKernel(0.37, kernel, ws)
	partial := mat.New(npat, n)
	for i := range partial.Data {
		partial.Data[i] = 0.5
	}
	dst := mat.New(npat, n)
	scratch := make([]float64, n)

	b.Run("persite-naive-gemv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for pt := 0; pt < npat; pt++ {
				blas.NaiveGemv(false, 1, p, partial.Row(pt), 0, dst.Row(pt))
			}
		}
	})
	b.Run("persite-gemv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for pt := 0; pt < npat; pt++ {
				blas.Dgemv(false, 1, p, partial.Row(pt), 0, dst.Row(pt))
			}
		}
	})
	b.Run("persite-symv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for pt := 0; pt < npat; pt++ {
				d.ApplySym(kernel, partial.Row(pt), dst.Row(pt), scratch)
			}
		}
	})
	b.Run("bundled-gemm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blas.Dgemm(false, true, 1, partial, p, 0, dst)
		}
	})
}

// BenchmarkLikelihoodEval times one full pruning pass per engine
// strategy on the dataset iii shape — the per-iteration building
// block behind Tables III/IV.
func BenchmarkLikelihoodEval(b *testing.B) {
	preset, err := sim.PresetByID("iii")
	if err != nil {
		b.Fatal(err)
	}
	ds, err := preset.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	ca, err := align.EncodeCodons(ds.Alignment, codon.Universal)
	if err != nil {
		b.Fatal(err)
	}
	pats := align.Compress(ca)
	pi, err := codon.F61(codon.Universal, pats.CountCodonsCompressed())
	if err != nil {
		b.Fatal(err)
	}
	model, err := bsm.New(codon.Universal, bsm.H1, sim.TrueParams(), pi)
	if err != nil {
		b.Fatal(err)
	}
	configs := []struct {
		name string
		cfg  lik.Config
	}{
		{"baseline-naive", lik.Config{Kernel: lik.TierNaive, PMethod: expm.MethodGEMM, Apply: lik.ApplyPerSiteGEMV}},
		{"slim-syrk-gemv", lik.Config{Kernel: lik.TierTuned, PMethod: expm.MethodSYRK, Apply: lik.ApplyPerSiteGEMV}},
		{"slim-syrk-symv", lik.Config{Kernel: lik.TierTuned, PMethod: expm.MethodSYRK, Apply: lik.ApplyPerSiteSYMV}},
		{"slim-syrk-bundled", lik.Config{Kernel: lik.TierTuned, PMethod: expm.MethodSYRK, Apply: lik.ApplyBundled}},
	}
	for _, tc := range configs {
		b.Run(tc.name, func(b *testing.B) {
			eng, err := lik.New(ds.Tree, pats, ca.Names, tc.cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.SetModel(model); err != nil {
				b.Fatal(err)
			}
			lens := eng.BranchLengths()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Touch one branch so transition caches rebuild the
				// way an optimizer step would.
				lens[0] *= 1.000001
				if err := eng.SetBranchLengths(lens); err != nil {
					b.Fatal(err)
				}
				_ = eng.LogLikelihood()
			}
		})
	}
}

// TestAccuracyHarness exercises the E2 accuracy computation end to end
// on the smallest dataset (quick caps): the harness must produce
// finite, small relative differences and consistent speedup rows.
func TestAccuracyHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run in -short mode")
	}
	preset, err := sim.PresetByID("i")
	if err != nil {
		t.Fatal(err)
	}
	preset.Codons = 60 // keep the test quick; shape preserved
	pair, err := bench.RunPair(preset, bench.Config{MaxIterations: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	acc := bench.ComputeAccuracy(pair)
	if !(acc.DH0 >= 0) || !(acc.DH1 >= 0) {
		t.Fatalf("accuracy not computed: %+v", acc)
	}
	// Both engines optimize the same surface; capped runs may stop at
	// slightly different points but must be close in relative terms.
	if acc.DH0 > 1e-2 || acc.DH1 > 1e-2 {
		t.Fatalf("engines diverged: %+v", acc)
	}
	sp := bench.ComputeSpeedups(pair)
	if sp.Combined <= 0 || sp.PerIterBoth <= 0 {
		t.Fatalf("speedups not computed: %+v", sp)
	}
}

// BenchmarkParallelEngine contrasts the execution strategies on the
// dataset iii shape: serial, the seed's class-level parallelism
// (ceiling: one goroutine per site class, i.e. 4-way), and the
// block-pool engine over (class × pattern-block) tiles at 1/2/4/8
// workers. All strategies compute bit-identical log-likelihoods; only
// the scheduling differs. The README records the measured table.
func BenchmarkParallelEngine(b *testing.B) {
	fx, err := bench.NewEvalFixture("iii", 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	base := core.EngineSlimBundled.LikConfig()
	run := func(b *testing.B, cfg lik.Config) {
		eng, err := fx.NewEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		lens := eng.BranchLengths()
		branch := eng.BranchIDs()[0]
		eng.LogLikelihood()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lens[branch] *= 1.0000001
			if err := eng.SetBranchLengths(lens); err != nil {
				b.Fatal(err)
			}
			_ = eng.LogLikelihood()
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, base) })
	b.Run("class-4way", func(b *testing.B) {
		cfg := base
		cfg.Parallel = true
		run(b, cfg)
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("block-pool-%dw", workers), func(b *testing.B) {
			cfg := base
			cfg.Workers = workers
			run(b, cfg)
		})
	}
}

// BenchmarkRefreshTransitions times the transition-matrix phase — the
// rebuild of every branch's P(t) products after a full invalidation,
// exactly what the optimizer's full-gradient re-installs trigger —
// serially and on the block pool, at increasing branch counts (the
// dataset iv family at 8/16/32 species; the per-run "branches" metric
// reports the exact count). Since
// PR 3 this phase runs as per-(branch, slot) tasks on worker-indexed
// expm workspaces, so it parallelizes like the pruning tiles; the
// rebuilt matrices are bit-identical in every row. The README records
// the measured table with the machine's GOMAXPROCS.
func BenchmarkRefreshTransitions(b *testing.B) {
	for _, species := range []int{8, 16, 32} {
		fx, err := bench.NewEvalFixture("iv", species, 1)
		if err != nil {
			b.Fatal(err)
		}
		base := core.EngineSlim.LikConfig()
		run := func(b *testing.B, cfg lik.Config) {
			eng, err := fx.NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			lens := eng.BranchLengths()
			branches := eng.BranchIDs()
			eng.RefreshTransitions() // warm workspaces outside the timed region
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, v := range branches {
					lens[v] *= 1.0000001
				}
				if err := eng.SetBranchLengths(lens); err != nil {
					b.Fatal(err)
				}
				eng.RefreshTransitions()
			}
			b.ReportMetric(float64(len(branches)), "branches")
		}
		b.Run(fmt.Sprintf("species_%d/serial", species), func(b *testing.B) { run(b, base) })
		for _, workers := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("species_%d/block-pool-%dw", species, workers), func(b *testing.B) {
				cfg := base
				cfg.Workers = workers
				run(b, cfg)
			})
		}
	}
}

// BenchmarkKernelSweep times every registered GEMM kernel on the NT
// shapes the likelihood computation issues (see bench.KernelShapes):
// the Eq. 9 transition build and the bundled pattern-block apply, each
// through the plain and the pre-packed entry point. All kernels are
// bit-exact (conformance suite), so the contrast is pure speed; the
// README records the per-dimension table.
func BenchmarkKernelSweep(b *testing.B) {
	for _, sh := range bench.KernelShapes {
		m, n, k := sh[0], sh[1], sh[2]
		a := mat.New(m, k)
		bm := mat.New(n, k)
		c := mat.New(m, n)
		for i := range a.Data {
			a.Data[i] = float64(i%17) * 0.25
		}
		for i := range bm.Data {
			bm.Data[i] = float64(i%13) * 0.5
		}
		for _, kr := range blas.Kernels() {
			name := fmt.Sprintf("%dx%dx%d/%s", m, n, k, kr.Name())
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					kr.DgemmNT(1, a, bm, 0, c)
				}
			})
			b.Run(name+"-packed", func(b *testing.B) {
				var pb blas.PackedB
				kr.PackB(bm, &pb)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					kr.DgemmNTRowsPacked(1, a, &pb, 0, c, 0, m)
				}
			})
		}
	}
}

// BenchmarkBatchDriver measures the multi-gene batch driver against
// running the same genes back-to-back: shared workers, shared
// eigendecomposition cache, pooled frequencies.
func BenchmarkBatchDriver(b *testing.B) {
	const nGenes = 4
	genes := make([]core.Gene, nGenes)
	for i := range genes {
		tree, err := sim.RandomTree(sim.TreeConfig{Species: 6, MeanBranchLength: 0.15, Seed: int64(20 + i)})
		if err != nil {
			b.Fatal(err)
		}
		aln, err := sim.Simulate(tree, codon.Universal, sim.SeqConfig{
			Sites:  60,
			Params: sim.TrueParams(),
			Seed:   int64(70 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		genes[i] = core.Gene{Name: fmt.Sprintf("g%d", i), Alignment: aln, Tree: tree}
	}
	opts := core.Options{Engine: core.EngineSlim, MaxIterations: 2, Seed: 1}

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, g := range genes {
				an, err := core.NewAnalysis(g.Alignment, g.Tree, opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := an.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.RunBatch(genes, core.BatchOptions{
				Options:          opts,
				ShareFrequencies: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Failed != 0 {
				b.Fatal("batch gene failed")
			}
		}
	})
}

// BenchmarkBranchUpdate quantifies the O(depth) single-branch path
// update against a full pruning pass — the design choice that makes
// numerical branch-length gradients affordable (DESIGN.md,
// "Optimization").
func BenchmarkBranchUpdate(b *testing.B) {
	preset, err := sim.PresetByID("iii")
	if err != nil {
		b.Fatal(err)
	}
	ds, err := preset.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	ca, err := align.EncodeCodons(ds.Alignment, codon.Universal)
	if err != nil {
		b.Fatal(err)
	}
	pats := align.Compress(ca)
	pi, err := codon.F61(codon.Universal, pats.CountCodonsCompressed())
	if err != nil {
		b.Fatal(err)
	}
	model, err := bsm.New(codon.Universal, bsm.H1, sim.TrueParams(), pi)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := lik.New(ds.Tree, pats, ca.Names, core.EngineSlim.LikConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.SetModel(model); err != nil {
		b.Fatal(err)
	}
	eng.LogLikelihood()
	branch := eng.BranchIDs()[0]
	lens := eng.BranchLengths()

	b.Run("full-pruning", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lens[branch] *= 1.0000001
			if err := eng.SetBranchLengths(lens); err != nil {
				b.Fatal(err)
			}
			_ = eng.LogLikelihood()
		}
	})
	b.Run("path-update", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = eng.BranchLogLikelihood(branch, lens[branch]*1.0000001)
		}
	})
}

// BenchmarkDecompositionReuse contrasts the paper's §III-A design —
// eigendecompose once per Q, then one cheap product per branch length
// — against recomputing the exponential from scratch per branch
// (Padé scaling-and-squaring).
func BenchmarkDecompositionReuse(b *testing.B) {
	d := kernelFixture(b)
	pi := codon.UniformFrequencies(codon.Universal)
	rate, err := codon.NewRate(codon.Universal, 2, 0.3, pi)
	if err != nil {
		b.Fatal(err)
	}
	ws := d.NewWorkspace()
	p := mat.New(d.N(), d.N())
	lens := []float64{0.01, 0.05, 0.1, 0.2, 0.4, 0.8, 1.2, 2.0}

	b.Run("eigen-cached-syrk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, t := range lens {
				d.PMatrix(t, expm.MethodSYRK, p, ws)
			}
		}
	})
	b.Run("pade-per-branch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, t := range lens {
				_ = expm.PadeExpm(rate.Q, t)
			}
		}
	})
}
